//! The cycle-level machine model.
//!
//! An execution-driven, 8-wide, clustered, SMT out-of-order pipeline with
//! explicit signal-propagation delays: wake-ups, confirmations, redirects
//! and miss signals all ride delay lines rather than acting instantly —
//! the property the paper credits ASIM with enforcing.
//!
//! Stage order within a cycle is reverse (retire → … → fetch) so that no
//! information computed in a stage can be consumed by an earlier stage in
//! the same cycle.

use crate::config::{LoadSpecPolicy, PipelineConfig, RegisterScheme};
use crate::dyninst::{
    BranchPrediction, DestRename, InstId, InstPhase, InstSlab, OperandSource, SrcOperand,
};
use crate::error::{DeadlockError, PipelineSnapshot, SimError, ThreadSnapshot};
use crate::faults::FaultInjector;
use crate::iq::{IqEntry, IqState, IssueQueue};
use crate::lsq::{contains, forward_value, overlaps, StoreWaitTable};
use crate::stats::{CpiComponent, SimStats};
use crate::trace::PipelineTracer;
use crate::wheel::{Due, TimingWheel};
use looseloops_branch::{
    build_predictor, Btb, DirectionPredictor, LinePredictor, ReturnAddressStack,
};
use looseloops_isa::{
    branch_taken, eval_op, ArchState, Class, FlatMemory, Inst, Memory, Opcode, Program, Retired,
};
use looseloops_mem::{AccessKind, MemHierarchy};
use looseloops_regs::{
    ClusterRegCache, ForwardingBuffer, FreeList, InsertionTable, PhysReg, PhysRegFile, RenameMap,
    Rpft,
};
use std::collections::VecDeque;

/// Bucket count for the event wheels. Most delays are bounded by small
/// config latencies (issue-to-execute transit, ALU/cache latencies); even
/// a memory miss with a TLB walk stays well inside 256 cycles, so the
/// overflow heap only sees fault-injected latency spikes and pathological
/// configurations.
const WHEEL_HORIZON: u64 = 256;

/// Reusable per-stage working buffers. Every stage that needs a scratch
/// list takes the buffer out (`std::mem::take`), uses it, and puts it
/// back, so after warm-up `step_cycle` runs without heap allocation: the
/// buffers keep their high-water capacity across cycles.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Per-thread "cannot make further progress this cycle" flags, shared
    /// by the rename / insert / retire round-robin loops.
    blocked: Vec<bool>,
    /// do_issue: per-cluster oldest-ready selection.
    picks: Vec<Option<(u64, InstId)>>,
    /// Events drained from `exec_events` this cycle.
    exec_due: Vec<Due<(InstId, u32)>>,
    /// do_execute: still-valid events ordered by age (`seq`).
    exec_list: Vec<(u64, InstId, u32)>,
    /// Events drained from `complete_events` this cycle.
    complete_due: Vec<Due<(InstId, u32)>>,
    /// do_complete: still-valid completions ordered by age.
    due: Vec<(u64, InstId, u32, u64)>,
    /// Events drained from `wakeup_events` this cycle.
    wakeup_due: Vec<Due<(InstId, u32, u64)>>,
    /// Load-shadow kill / trap recovery victims.
    to_replay: Vec<InstId>,
    /// squash_after: not-yet-renamed front-end victims.
    dropped: Vec<InstId>,
    /// do_writeback: values leaving the forwarding buffer this cycle.
    expiring: Vec<(PhysReg, u64)>,
}

/// Per-thread front-end and program-order state. Fields are crate-visible
/// for the invariant auditor (`audit.rs`).
#[derive(Debug)]
pub(crate) struct ThreadState {
    pub(crate) program: Program,
    pub(crate) fetch_pc: u64,
    /// PC of the next instruction in architectural (retired) order —
    /// `entry` until the first retirement, then the last retired
    /// instruction's `next_pc`.
    pub(crate) arch_pc: u64,
    /// Fetch suspended: a `halt` was fetched, or the PC ran off the image
    /// on a wrong path. Cleared by squash redirects.
    pub(crate) fetch_suspended: bool,
    pub(crate) fetch_stall_until: u64,
    /// Fetched instructions awaiting rename, with the cycle they become
    /// eligible (fetch-stage delay).
    pub(crate) decode_q: VecDeque<(u64, InstId)>,
    /// Renamed instructions travelling the DEC-IQ pipe toward the IQ.
    pub(crate) transit_q: VecDeque<(u64, InstId)>,
    /// Program-order window (renamed, not yet retired).
    pub(crate) rob: VecDeque<InstId>,
    /// In-flight stores in program order.
    pub(crate) store_q: VecDeque<InstId>,
    pub(crate) ras: ReturnAddressStack,
    /// Sequence number of an un-retired memory barrier stalling rename.
    pub(crate) mb_stall_seq: Option<u64>,
    /// Unresolved conditional branches in flight (checkpoint accounting).
    pub(crate) unresolved_branches: usize,
    /// The thread retired its `halt`.
    pub(crate) done: bool,
    /// CPI-stack attribution for the pipeline refill in progress: the
    /// squash (or barrier) cause plus the global `seq` at the event. Empty
    /// or front-end-phase retire slots charge here until an instruction
    /// younger than the marker retires (refill delivered).
    pub(crate) refill_cause: Option<(u64, CpiComponent)>,
    /// Verification oracle (enabled by [`Machine::enable_verification`]).
    pub(crate) oracle: Option<(ArchState, FlatMemory)>,
}

impl ThreadState {
    fn frontend_len(&self) -> usize {
        self.decode_q.len() + self.transit_q.len()
    }

    fn icount(&self) -> usize {
        self.frontend_len() + self.rob.len()
    }
}

/// The simulated machine: construct with [`Machine::new`] (or the
/// panicking [`Machine::must`]), drive with [`Machine::run`], read results
/// from [`Machine::stats`]. Fields are crate-visible for the invariant
/// auditor (`audit.rs`).
pub struct Machine {
    pub(crate) cfg: PipelineConfig,
    pub(crate) cycle: u64,
    pub(crate) seq: u64,
    pub(crate) slab: InstSlab,
    pub(crate) iq: IssueQueue,
    pub(crate) threads: Vec<ThreadState>,
    // Register machinery.
    pub(crate) freelist: FreeList,
    pub(crate) physfile: PhysRegFile,
    pub(crate) rename: Vec<RenameMap>,
    pub(crate) fwd: ForwardingBuffer,
    pub(crate) rpft: Rpft,
    pub(crate) crcs: Vec<ClusterRegCache>,
    pub(crate) itables: Vec<InsertionTable>,
    /// Per physical register: earliest cycle a consumer may *issue* so its
    /// operand is present at execute. `u64::MAX` = producer unscheduled.
    pub(crate) ready_at: Vec<u64>,
    /// Per physical register: cycle the value was actually produced
    /// (`u64::MAX` while in flight).
    pub(crate) avail_cycle: Vec<u64>,
    /// Per physical register: bumped whenever `ready_at` is rewritten, so
    /// consumers blocked on a failed wake-up know when to retry.
    pub(crate) ready_version: Vec<u32>,
    // Memory.
    pub(crate) hier: MemHierarchy,
    pub(crate) data_mem: FlatMemory,
    // Prediction.
    pub(crate) pred: Box<dyn DirectionPredictor>,
    pub(crate) btb: Btb,
    pub(crate) line_pred: LinePredictor,
    pub(crate) store_wait: StoreWaitTable,
    // Event wheels: cycle -> [(inst, issue-stamp)] in insertion order.
    pub(crate) exec_events: TimingWheel<(InstId, u32)>,
    pub(crate) complete_events: TimingWheel<(InstId, u32)>,
    /// Delayed wake-up corrections: the IQ learns a load missed only after
    /// the load-resolution loop's feedback delay. (cycle -> [(inst, stamp,
    /// corrected ready_at)]).
    pub(crate) wakeup_events: TimingWheel<(InstId, u32, u64)>,
    pub(crate) frontend_stall_until: u64,
    /// Per-cluster count of slotted instructions still in DEC-IQ transit
    /// (the IQ itself tracks inserted ones). Slotting balances on the sum,
    /// otherwise whole fetch groups clump onto one cluster for the length
    /// of the transit pipe.
    pub(crate) cluster_pressure: Vec<u32>,
    pub(crate) stats: SimStats,
    /// Captured retire stream (for equivalence tests), if enabled.
    pub(crate) retire_capture: Option<Vec<(usize, Retired)>>,
    /// Kanata pipeline tracer, if enabled.
    pub(crate) tracer: Option<PipelineTracer>,
    /// Armed fault injector (from `cfg.faults`), if any.
    pub(crate) injector: Option<FaultInjector>,
    /// Reusable per-stage working buffers (see [`Scratch`]).
    pub(crate) scratch: Scratch,
}

impl Machine {
    /// Build a machine running `programs` (one per hardware thread).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is invalid
    /// ([`PipelineConfig::validate`]) and [`SimError::ProgramCount`] if the
    /// program count does not match `cfg.threads`.
    pub fn new(cfg: PipelineConfig, programs: Vec<Program>) -> Result<Machine, SimError> {
        cfg.validate()?;
        if programs.len() != cfg.threads {
            return Err(SimError::ProgramCount {
                expected: cfg.threads,
                got: programs.len(),
            });
        }

        let mut freelist = FreeList::new(cfg.phys_regs);
        let rename: Vec<RenameMap> = (0..cfg.threads)
            .map(|_| RenameMap::new(&mut freelist))
            .collect();
        let mut data_mem = FlatMemory::new();
        for p in &programs {
            data_mem.load_init_data(p);
        }
        let (crcs, itables) = match cfg.scheme {
            RegisterScheme::Monolithic => (Vec::new(), Vec::new()),
            RegisterScheme::Dra {
                crc_entries,
                crc_policy,
            } => (
                (0..cfg.clusters)
                    .map(|_| ClusterRegCache::with_policy(crc_entries, crc_policy))
                    .collect(),
                (0..cfg.clusters)
                    .map(|_| InsertionTable::new(cfg.phys_regs))
                    .collect(),
            ),
        };
        let threads = programs
            .into_iter()
            .map(|program| ThreadState {
                fetch_pc: program.entry,
                arch_pc: program.entry,
                program,
                fetch_suspended: false,
                fetch_stall_until: 0,
                decode_q: VecDeque::new(),
                transit_q: VecDeque::new(),
                rob: VecDeque::new(),
                store_q: VecDeque::new(),
                ras: ReturnAddressStack::new(cfg.ras_entries),
                mb_stall_seq: None,
                unresolved_branches: 0,
                done: false,
                refill_cause: None,
                oracle: None,
            })
            .collect();

        Ok(Machine {
            iq: IssueQueue::new(cfg.iq_entries, cfg.clusters),
            physfile: PhysRegFile::new(cfg.phys_regs),
            fwd: ForwardingBuffer::with_regs(cfg.fwd_window, cfg.phys_regs),
            rpft: Rpft::new(cfg.phys_regs),
            ready_at: vec![0; cfg.phys_regs],
            avail_cycle: vec![0; cfg.phys_regs],
            ready_version: vec![0; cfg.phys_regs],
            hier: MemHierarchy::new(cfg.mem),
            pred: build_predictor(cfg.predictor),
            btb: Btb::new(cfg.btb_entries),
            line_pred: LinePredictor::new(cfg.line_entries, cfg.width as u64),
            store_wait: StoreWaitTable::new(cfg.store_wait_entries),
            stats: SimStats::new(cfg.threads),
            crcs,
            itables,
            threads,
            rename,
            freelist,
            data_mem,
            cycle: 0,
            seq: 0,
            slab: InstSlab::new(),
            exec_events: TimingWheel::new(WHEEL_HORIZON),
            complete_events: TimingWheel::new(WHEEL_HORIZON),
            wakeup_events: TimingWheel::new(WHEEL_HORIZON),
            scratch: Scratch::default(),
            frontend_stall_until: 0,
            cluster_pressure: vec![0; cfg.clusters],
            retire_capture: None,
            tracer: None,
            injector: cfg.faults.map(FaultInjector::new),
            cfg,
        })
    }

    /// [`Machine::new`] for infallible contexts (benches, examples).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or mismatched program count.
    pub fn must(cfg: PipelineConfig, programs: Vec<Program>) -> Machine {
        Machine::new(cfg, programs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The machine's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Current cycle.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Architectural data memory (retired stores + initial images).
    pub fn data_mem(&mut self) -> &mut FlatMemory {
        &mut self.data_mem
    }

    /// Architectural value of register `r` in `thread` (via the retired
    /// rename mapping — only meaningful once the pipeline has drained, e.g.
    /// after the thread halts).
    pub fn arch_reg(&mut self, thread: usize, r: looseloops_isa::Reg) -> u64 {
        if r.is_zero() {
            return 0;
        }
        let p = self.rename[thread].lookup(r);
        self.physfile.read(p)
    }

    /// Snapshot of `thread`'s full architectural state — all 64 registers
    /// (via [`Machine::arch_reg`]), the PC of the next unretired
    /// instruction, and the halt flag — as an interpreter [`ArchState`],
    /// so it can be [`ArchState::diff`]ed against the functional model's.
    /// Like `arch_reg`, only meaningful once the pipeline has drained.
    pub fn arch_state(&mut self, thread: usize) -> ArchState {
        let mut st = ArchState::new(&self.threads[thread].program);
        for idx in 0..looseloops_isa::reg::NUM_ARCH_REGS {
            let r = looseloops_isa::Reg::from_index(idx);
            let v = self.arch_reg(thread, r);
            st.write_reg(r, v);
        }
        st.set_pc(self.threads[thread].arch_pc);
        st.set_halted(self.threads[thread].done);
        st
    }

    /// Scheduled-vs-fired fault accounting (`None` when `cfg.faults` is
    /// unset). Storm tests assert on this so injections cannot be dropped
    /// silently.
    pub fn fault_summary(&self) -> Option<crate::faults::FaultSummary> {
        self.injector.as_ref().map(FaultInjector::summary)
    }

    /// Check every retired instruction against the functional interpreter,
    /// starting from the machine's *current* architectural state — so this
    /// works both on a fresh machine and immediately after a checkpoint
    /// restore (call it before running, or after the pipeline has fully
    /// drained).
    ///
    /// # Panics
    ///
    /// Any later `run` panics on the first divergence. Only valid for
    /// workloads whose threads touch disjoint memory (all bundled
    /// workloads do): each thread's oracle gets its own clone of the
    /// shared data memory.
    pub fn enable_verification(&mut self) {
        let states: Vec<ArchState> = (0..self.threads.len())
            .map(|t| self.arch_state(t))
            .collect();
        for (t, st) in states.into_iter().enumerate() {
            let mem = self.data_mem.clone();
            self.threads[t].oracle = Some((st, mem));
        }
    }

    /// Restore a thread's architectural state (all 64 registers, the PC of
    /// the next instruction, and the halt flag) from a checkpoint. The
    /// values land in the physical register file through the committed
    /// rename mapping, so a subsequent [`Machine::run`] picks up exactly
    /// where the functional fast-forward left off.
    ///
    /// # Errors
    ///
    /// [`SimError::FastForward`] if any cycle has already run (restore is
    /// only sound on a fresh machine) or `regs` has the wrong length.
    pub fn restore_thread_state(
        &mut self,
        thread: usize,
        regs: &[u64],
        pc: u64,
        halted: bool,
    ) -> Result<(), SimError> {
        if self.cycle != 0 || self.seq != 0 {
            return Err(SimError::FastForward(
                "thread restore requires a fresh machine (cycle 0)".into(),
            ));
        }
        if regs.len() != usize::from(looseloops_isa::reg::NUM_ARCH_REGS) {
            return Err(SimError::FastForward(format!(
                "checkpoint has {} registers, machine has {}",
                regs.len(),
                looseloops_isa::reg::NUM_ARCH_REGS
            )));
        }
        for (idx, &v) in regs.iter().enumerate() {
            let r = looseloops_isa::Reg::from_index(idx as u8);
            if r.is_zero() {
                continue;
            }
            let p = self.rename[thread].lookup(r);
            self.physfile.write(p, v);
        }
        let th = &mut self.threads[thread];
        th.fetch_pc = pc;
        th.arch_pc = pc;
        th.done = halted;
        th.fetch_suspended = halted;
        Ok(())
    }

    /// Replace the shared functional data memory wholesale (checkpoint
    /// restore; pair with [`Machine::restore_thread_state`]).
    pub fn replace_data_mem(&mut self, mem: FlatMemory) {
        self.data_mem = mem;
    }

    /// Install cache/TLB warm state captured during functional fast-forward.
    ///
    /// # Errors
    ///
    /// [`SimError::FastForward`] if the snapshot does not match this
    /// machine's hierarchy geometry.
    pub fn install_warm_hierarchy(
        &mut self,
        warm: &looseloops_mem::HierarchyWarmState,
    ) -> Result<(), SimError> {
        self.hier.import_warm(warm).map_err(SimError::FastForward)
    }

    /// Install direction-predictor warm state (the word vector from
    /// `DirectionPredictor::export_state` of a same-kind predictor).
    ///
    /// # Errors
    ///
    /// [`SimError::FastForward`] on a geometry/kind mismatch.
    pub fn install_warm_predictor(&mut self, words: &[u64]) -> Result<(), SimError> {
        self.pred.import_state(words).map_err(SimError::FastForward)
    }

    /// Install BTB warm state (from `Btb::export_state` of a same-size BTB).
    ///
    /// # Errors
    ///
    /// [`SimError::FastForward`] on a size mismatch.
    pub fn install_warm_btb(&mut self, entries: &[(u64, u64)]) -> Result<(), SimError> {
        self.btb
            .import_state(entries)
            .map_err(SimError::FastForward)
    }

    /// Start recording a Kanata pipeline trace (viewable in Konata-style
    /// pipeline viewers). Costly in memory for long runs; intended for
    /// windows of up to a few hundred thousand cycles.
    pub fn enable_trace(&mut self) {
        self.tracer = Some(PipelineTracer::new());
    }

    /// Drain the Kanata trace recorded since `enable_trace` (empty string
    /// if tracing was never enabled).
    pub fn take_trace(&mut self) -> String {
        self.tracer
            .as_mut()
            .map(PipelineTracer::take)
            .unwrap_or_default()
    }

    /// Record `(thread, Retired)` for every retirement (equivalence tests).
    pub fn enable_retire_capture(&mut self) {
        self.retire_capture = Some(Vec::new());
    }

    /// Drain and return the captured retire stream. Capture stays enabled;
    /// the drained buffer's allocation is handed to the caller and the
    /// capture restarts empty.
    pub fn take_retires(&mut self) -> Vec<(usize, Retired)> {
        self.retire_capture
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Number of dynamic instructions currently tracked (fetched, not yet
    /// retired or squashed).
    pub fn in_flight(&self) -> usize {
        self.slab.live()
    }

    /// Free physical registers (diagnostics: after a full drain this must
    /// equal `phys_regs - 64 * threads` or registers leaked).
    pub fn free_phys_regs(&self) -> usize {
        self.freelist.available()
    }

    /// All threads have retired their `halt`.
    pub fn is_done(&self) -> bool {
        self.threads.iter().all(|t| t.done)
    }

    /// Reset statistics counters (after warm-up) without touching
    /// micro-architectural state.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::new(self.cfg.threads);
    }

    /// Run until every thread halts, `max_retired` instructions retire
    /// (total), or `max_cycles` elapse — whichever is first. Returns the
    /// statistics.
    ///
    /// When `cfg.audit` is set, the invariant auditor runs after every
    /// cycle; when `cfg.watchdog_window` is non-zero, a forward-progress
    /// watchdog monitors retirement.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if no instruction retires for a whole
    /// watchdog window while un-halted threads still have work, and
    /// [`SimError::Invariant`] if the auditor finds a broken structural
    /// invariant. Both carry enough state to diagnose the wedge; the
    /// machine is left intact for inspection.
    pub fn run(&mut self, max_retired: u64, max_cycles: u64) -> Result<&SimStats, SimError> {
        let target = self.stats.total_retired().saturating_add(max_retired);
        let last_cycle = self.cycle.saturating_add(max_cycles);
        let window = self.cfg.watchdog_window;
        // The watchdog anchors at run start so a machine that never retires
        // anything still trips it.
        let mut last_retired = self.stats.total_retired();
        let mut last_progress_cycle = self.cycle;
        while !self.is_done() && self.stats.total_retired() < target && self.cycle < last_cycle {
            self.step_cycle();
            if self.cfg.audit {
                if let Err(v) = self.audit() {
                    self.finalize_stats();
                    return Err(v.into());
                }
            }
            let retired = self.stats.total_retired();
            if retired != last_retired {
                last_retired = retired;
                last_progress_cycle = self.cycle;
            } else if window > 0 && self.cycle - last_progress_cycle >= window {
                self.stats.deadlocks_detected += 1;
                self.finalize_stats();
                return Err(DeadlockError {
                    cycle: self.cycle,
                    window,
                    last_retire_cycle: last_progress_cycle,
                    snapshot: self.snapshot(),
                }
                .into());
            }
        }
        self.finalize_stats();
        Ok(&self.stats)
    }

    /// Point-in-time occupancy of every pipeline structure (the payload of
    /// a [`DeadlockError`], also useful for ad-hoc diagnostics).
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            cycle: self.cycle,
            iq_len: self.iq.len(),
            iq_capacity: self.iq.capacity(),
            iq_states: self.iq.state_breakdown(),
            free_phys_regs: self.freelist.available(),
            phys_regs: self.cfg.phys_regs,
            in_flight: self.total_in_flight(),
            max_in_flight: self.cfg.max_in_flight,
            frontend_stall_until: self.frontend_stall_until,
            pending_events: (
                self.exec_events.len(),
                self.complete_events.len(),
                self.wakeup_events.len(),
            ),
            threads: self
                .threads
                .iter()
                .map(|th| ThreadSnapshot {
                    done: th.done,
                    fetch_pc: th.fetch_pc,
                    fetch_suspended: th.fetch_suspended,
                    fetch_stall_until: th.fetch_stall_until,
                    decode_q: th.decode_q.len(),
                    transit_q: th.transit_q.len(),
                    rob: th.rob.len(),
                    store_q: th.store_q.len(),
                    unresolved_branches: th.unresolved_branches,
                    mb_stalled: th.mb_stall_seq.is_some(),
                    oldest: th.rob.front().and_then(|&id| self.slab.get(id)).map(|di| {
                        let phase = match di.phase {
                            InstPhase::FrontEnd => "FrontEnd",
                            InstPhase::InIq => "InIq",
                            InstPhase::Issued => "Issued",
                            InstPhase::Complete => "Complete",
                            InstPhase::Retired => "Retired",
                        };
                        (di.seq, di.pc, phase)
                    }),
                })
                .collect(),
        }
    }

    /// Advance exactly one cycle.
    pub fn step_cycle(&mut self) {
        let now = self.cycle;
        let retired = self.do_retire(now);
        // Attribution reads the machine exactly as retire left it, before
        // later (earlier-in-pipe) stages mutate phases for the next cycle.
        self.attribute_cycle(now, retired);
        self.do_complete(now);
        // Write-back runs before execute: a value leaving the forwarding
        // buffer this cycle is already in the register file / CRCs when
        // this cycle's executions read operands (the hardware's write-back
        // bypass wire).
        self.do_writeback(now);
        self.do_execute(now);
        self.do_wakeups(now);
        self.do_issue(now);
        self.do_insert(now);
        self.do_rename(now);
        self.do_fetch(now);
        self.iq.release_confirmed(now);
        self.iq.sample_occupancy();
        if now < self.frontend_stall_until {
            self.stats.operand_miss_stall_cycles += 1;
        }
        self.stats.cycles += 1;
        self.cycle += 1;
    }

    fn finalize_stats(&mut self) {
        let (mean, post, peak) = self.iq.occupancy_stats();
        self.stats.iq_occupancy_mean = mean;
        self.stats.iq_post_issue_mean = post;
        self.stats.iq_peak = peak;
        self.stats.mem = self.hier.stats();
        self.stats.line_pred = self.line_pred.stats();
        if let RegisterScheme::Dra { .. } = self.cfg.scheme {
            self.stats.insertion_saturations =
                self.itables.iter().map(|t| t.saturation_events()).sum();
        }
        if let Some(inj) = &self.injector {
            self.stats.faults_injected = inj.injected();
            self.stats.faults_by_kind = inj.by_kind();
        }
    }

    /// Rewrite a register's wake-up schedule and bump its version so
    /// blocked consumers re-evaluate.
    fn set_ready_at(&mut self, p: PhysReg, v: u64) {
        self.ready_at[p.index()] = v;
        self.ready_version[p.index()] = self.ready_version[p.index()].wrapping_add(1);
    }

    /// Process due wake-up corrections (the delayed miss notifications of
    /// the load-resolution loop).
    fn do_wakeups(&mut self, now: u64) {
        let mut list = std::mem::take(&mut self.scratch.wakeup_due);
        self.wakeup_events.drain_due(now, &mut list);
        for e in &list {
            let (id, stamp, ready) = e.payload;
            let Some(di) = self.slab.get(id) else {
                continue;
            };
            if di.issue_count != stamp {
                continue;
            }
            if let Some(DestRename { new, .. }) = di.dest {
                let v = ready.min(self.ready_at[new.index()]);
                self.set_ready_at(new, v);
            }
        }
        self.scratch.wakeup_due = list;
    }

    // ----------------------------------------------------------------- fetch

    fn do_fetch(&mut self, now: u64) {
        if now < self.frontend_stall_until {
            return;
        }
        // ICOUNT: fetch from the eligible thread with the fewest in-flight
        // instructions.
        let decode_cap = (self.cfg.fetch_stages as usize + 2) * self.cfg.width;
        let Some(t) = (0..self.threads.len())
            .filter(|&t| {
                let th = &self.threads[t];
                !th.done
                    && !th.fetch_suspended
                    && th.fetch_stall_until <= now
                    && th.decode_q.len() < decode_cap
            })
            .min_by_key(|&t| (self.threads[t].icount(), t))
        else {
            return;
        };

        let block_start = self.threads[t].fetch_pc;
        // One aligned I-cache access per fetch block.
        let block_addr = Program::inst_addr(block_start) & !63;
        let ic = self.hier.access(AccessKind::InstFetch, block_addr, now);
        if !ic.is_l1_hit() {
            self.threads[t].fetch_stall_until = now + ic.latency as u64;
            return;
        }

        let width = self.cfg.width as u64;
        let block_end = (block_start / width + 1) * width; // stay in the fetch block
        let mut pc = block_start;
        let next_fetch_pc;
        loop {
            let Some(inst) = self.threads[t].program.fetch(pc) else {
                // Wrong-path runaway: suspend until a squash redirects us.
                self.threads[t].fetch_suspended = true;
                next_fetch_pc = pc;
                break;
            };
            let id = self.alloc_inst(t, pc, inst, now);
            if let Some(tr) = &mut self.tracer {
                let seq = self.slab.expect(id).seq;
                tr.fetch(now, id, seq, t, &format!("{pc:>6}: {inst}"));
            }
            self.stats.fetched += 1;
            let ready = now + self.cfg.fetch_stages as u64;
            self.threads[t].decode_q.push_back((ready, id));

            if inst.class() == Class::Halt {
                self.threads[t].fetch_suspended = true;
                next_fetch_pc = pc + 1;
                break;
            }
            if inst.class().is_control() {
                let (next, taken) = self.predict_control(t, id, pc, inst);
                if taken {
                    next_fetch_pc = next;
                    break;
                }
            }
            pc += 1;
            if pc >= block_end {
                next_fetch_pc = pc;
                break;
            }
        }

        // Next-line predictor: the tight loop. A wrong prediction costs one
        // fetch bubble.
        let predicted = self.line_pred.predict(block_start);
        self.line_pred.train(block_start, next_fetch_pc);
        if predicted != next_fetch_pc {
            self.threads[t].fetch_stall_until = self.threads[t].fetch_stall_until.max(now + 2);
        }
        self.threads[t].fetch_pc = next_fetch_pc;
    }

    /// Predict a control instruction at fetch. Returns (next fetch pc,
    /// redirects-away-from-fall-through).
    fn predict_control(&mut self, t: usize, id: InstId, pc: u64, inst: Inst) -> (u64, bool) {
        let history = self.pred.snapshot_history();
        let ras_ckpt = self.threads[t].ras.checkpoint_fixed();
        let mut pred_ctx = 0u64;
        let fall = pc + 1;
        let (next, taken) = match inst.class() {
            Class::CondBranch => {
                let (mut dir, ctx) = self.pred.predict_ctx(pc);
                // Fault injection: a flipped direction is just a wrong
                // prediction — resolution squashes and repairs history
                // exactly as for a natural mispredict.
                if let Some(inj) = &mut self.injector {
                    if inj.flip_branch(self.cycle) {
                        dir = !dir;
                    }
                }
                pred_ctx = ctx;
                if dir {
                    ((fall as i64 + inst.imm as i64) as u64, true)
                } else {
                    (fall, false)
                }
            }
            Class::Branch => {
                // PC-relative target, known from pre-decode bits.
                if inst.op == Opcode::Jsr {
                    self.threads[t].ras.push(fall);
                }
                (((fall as i64) + inst.imm as i64) as u64, true)
            }
            Class::Jump => {
                let target = if inst.op == Opcode::Ret {
                    self.threads[t].ras.pop()
                } else {
                    self.btb.lookup(pc)
                };
                (target.unwrap_or(fall), true)
            }
            _ => unreachable!("not a control class"),
        };
        let di = self.slab.expect_mut(id);
        di.pred = Some(BranchPrediction {
            taken,
            next_pc: next,
            history,
            ctx: pred_ctx,
        });
        di.ras_ckpt = Some(ras_ckpt);
        (next, taken)
    }

    fn alloc_inst(&mut self, t: usize, pc: u64, inst: Inst, now: u64) -> InstId {
        self.seq += 1;
        self.slab.alloc(self.seq, t, pc, inst, now)
    }

    // ---------------------------------------------------------------- rename

    fn do_rename(&mut self, now: u64) {
        if now < self.frontend_stall_until {
            return;
        }
        let transit_cap = (self.cfg.dec_iq_stages as usize + 2) * self.cfg.width;
        let mut budget = self.cfg.width;
        // Round-robin across threads, in per-thread program order.
        let nthreads = self.threads.len();
        let mut blocked = std::mem::take(&mut self.scratch.blocked);
        blocked.clear();
        blocked.resize(nthreads, false);
        #[allow(clippy::needless_range_loop)] // t also indexes self.threads
        'outer: while budget > 0 {
            let mut progress = false;
            for t in 0..nthreads {
                if budget == 0 {
                    break 'outer;
                }
                if blocked[t] {
                    continue;
                }
                let th = &self.threads[t];
                let Some(&(ready, id)) = th.decode_q.front() else {
                    blocked[t] = true;
                    continue;
                };
                if ready > now
                    || th.mb_stall_seq.is_some()
                    || th.transit_q.len() >= transit_cap
                    || self.total_in_flight() >= self.cfg.max_in_flight
                {
                    if ready <= now {
                        self.stats.rename_stall_cycles += 1;
                    }
                    blocked[t] = true;
                    continue;
                }
                if !self.rename_one(t, id, now) {
                    self.stats.rename_stall_cycles += 1;
                    blocked[t] = true;
                    continue;
                }
                self.threads[t].decode_q.pop_front();
                budget -= 1;
                progress = true;
            }
            if !progress {
                break;
            }
        }
        self.scratch.blocked = blocked;
    }

    fn total_in_flight(&self) -> usize {
        // Every renamed, un-retired instruction sits in its thread's ROB
        // (instructions in DEC-IQ transit included), so the ROB lengths ARE
        // the in-flight count.
        self.threads.iter().map(|t| t.rob.len()).sum()
    }

    /// Rename one instruction; returns `false` if it must stall (free-list
    /// exhaustion or no free branch checkpoint).
    fn rename_one(&mut self, t: usize, id: InstId, now: u64) -> bool {
        let inst = self.slab.expect(id).inst;
        if inst.class() == Class::CondBranch {
            if let Some(limit) = self.cfg.branch_checkpoints {
                if self.threads[t].unresolved_branches >= limit {
                    return false; // wait for an older branch to resolve
                }
            }
        }
        // Sources must be looked up against the *pre-instruction* map —
        // before the destination rename overwrites a same-register mapping
        // (e.g. `add r2, r2, r1`).
        let mut src_phys: [Option<(looseloops_isa::Reg, PhysReg)>; 2] = [None, None];
        for (slot, arch) in inst.srcs().into_iter().enumerate() {
            if let Some(arch) = arch {
                src_phys[slot] = Some((arch, self.rename[t].lookup(arch)));
            }
        }
        let dest = match inst.dest() {
            Some(arch) => {
                let Some((new, prev)) = self.rename[t].rename_dest(arch, &mut self.freelist) else {
                    return false;
                };
                self.on_allocate_phys(new);
                Some(DestRename { arch, new, prev })
            }
            None => None,
        };

        // Cluster slotting: least-loaded among the clusters whose
        // functional units can execute this class (FP on the first
        // `fp_clusters`, memory on the last `mem_clusters`), counting both
        // IQ occupancy and DEC-IQ transit; ties to the lowest index.
        let class0 = inst.class();
        let eligible: std::ops::Range<usize> = match class0 {
            Class::FpAdd | Class::FpMul | Class::FpDiv => 0..self.cfg.fp_clusters,
            Class::Load | Class::Store => {
                (self.cfg.clusters - self.cfg.mem_clusters)..self.cfg.clusters
            }
            _ => 0..self.cfg.clusters,
        };
        // invariant: validate() guarantees fp_clusters and mem_clusters are
        // both in 1..=clusters, so every eligibility range is non-empty.
        let cluster = eligible
            .min_by_key(|&c| (self.iq.cluster_len(c) + self.cluster_pressure[c], c))
            .expect("at least one cluster");

        // Sources.
        let mut srcs: [Option<SrcOperand>; 2] = [None, None];
        for (slot, entry) in src_phys.into_iter().enumerate() {
            let Some((arch, phys)) = entry else { continue };
            let mut payload = None;
            let mut itable_pending = false;
            if self.cfg.scheme.is_dra() {
                if self.rpft.can_preread(phys) {
                    // Completed operand: pre-read during DEC-IQ.
                    payload = Some(self.physfile.read(phys));
                } else {
                    // Not in the register file yet: tell this cluster's
                    // insertion table a consumer is coming.
                    self.itables[cluster].increment(phys);
                    itable_pending = true;
                }
            }
            srcs[slot] = Some(SrcOperand {
                arch,
                phys,
                payload,
                ready_at: 0,
                obtained: None,
                avail_cycle: None,
                itable_pending,
                blocked_version: None,
            });
        }

        if let Some(tr) = &mut self.tracer {
            tr.stage(now, id, "Dc");
        }
        let class = inst.class();
        if class == Class::CondBranch {
            self.threads[t].unresolved_branches += 1;
            self.slab.expect_mut(id).holds_checkpoint = true;
        }
        let di = self.slab.expect_mut(id);
        di.rename_cycle = now;
        di.dest = dest;
        di.srcs = srcs;
        di.cluster = cluster;

        match class {
            Class::MemBar => {
                di.phase = InstPhase::Complete;
                di.next_pc = Some(di.pc + 1);
                self.threads[t].mb_stall_seq = Some(di.seq);
                self.threads[t].rob.push_back(id);
            }
            Class::Halt => {
                di.phase = InstPhase::Complete;
                di.next_pc = Some(di.pc);
                self.threads[t].rob.push_back(id);
            }
            _ => {
                if class == Class::Store {
                    self.threads[t].store_q.push_back(id);
                }
                self.cluster_pressure[cluster] += 1;
                self.threads[t].rob.push_back(id);
                let insert_at = now + self.cfg.dec_iq_stages as u64;
                self.threads[t].transit_q.push_back((insert_at, id));
            }
        }
        true
    }

    fn on_allocate_phys(&mut self, p: PhysReg) {
        self.physfile.mark_allocated(p);
        self.rpft.on_allocate(p);
        self.fwd.invalidate(p);
        for c in &mut self.crcs {
            c.invalidate(p);
        }
        for t in &mut self.itables {
            t.clear(p);
        }
        self.ready_at[p.index()] = u64::MAX;
        self.avail_cycle[p.index()] = u64::MAX;
    }

    // ---------------------------------------------------------------- insert

    fn do_insert(&mut self, now: u64) {
        if now < self.frontend_stall_until {
            return;
        }
        let nthreads = self.threads.len();
        let mut blocked = std::mem::take(&mut self.scratch.blocked);
        blocked.clear();
        blocked.resize(nthreads, false);
        #[allow(clippy::needless_range_loop)] // t also indexes self.threads
        loop {
            let mut progress = false;
            for t in 0..nthreads {
                if blocked[t] {
                    continue;
                }
                let Some(&(ready, id)) = self.threads[t].transit_q.front() else {
                    blocked[t] = true;
                    continue;
                };
                if ready > now || self.iq.free_slots() == 0 {
                    blocked[t] = true;
                    continue;
                }
                let di = self.slab.expect(id);
                let entry = IqEntry {
                    id,
                    seq: di.seq,
                    thread: t,
                    cluster: di.cluster,
                    state: IqState::Waiting,
                };
                let slot = self.iq.insert(entry);
                debug_assert!(slot.is_some());
                self.cluster_pressure[di.cluster] -= 1;
                if let Some(tr) = &mut self.tracer {
                    tr.stage(now, id, "Q");
                }
                let di = self.slab.expect_mut(id);
                di.phase = InstPhase::InIq;
                di.insert_cycle = Some(now);
                if let Some(slot) = slot {
                    di.iq_slot = slot;
                }
                self.threads[t].transit_q.pop_front();
                progress = true;
            }
            if !progress {
                break;
            }
        }
        self.scratch.blocked = blocked;
    }

    // ----------------------------------------------------------------- issue

    /// Earliest-issue constraint for one source operand.
    fn src_ready(&self, src: &SrcOperand, now: u64) -> bool {
        if src.payload.is_some() {
            return src.ready_at <= now;
        }
        // A consumer that already executed against a stale wake-up stays
        // blocked until the producer re-broadcasts (version change).
        if src.blocked_version == Some(self.ready_version[src.phys.index()]) {
            return false;
        }
        self.ready_at[src.phys.index()] <= now
    }

    fn entry_ready(&self, e: &IqEntry, now: u64) -> bool {
        let di = self.slab.expect(e.id);
        for src in di.srcs.iter().flatten() {
            if !self.src_ready(src, now) {
                return false;
            }
        }
        // Store-wait discipline: a load whose PC has trapped before must
        // wait for every older store's address.
        if di.inst.class() == Class::Load && self.store_wait.must_wait(di.pc) {
            for &sid in &self.threads[e.thread].store_q {
                let s = self.slab.expect(sid);
                if s.seq < di.seq && s.mem_addr.is_none() {
                    return false;
                }
            }
        }
        true
    }

    fn do_issue(&mut self, now: u64) {
        // One selection per cluster: oldest ready waiting entry. The IQ's
        // per-cluster waiting lists are age-sorted, so the first ready
        // entry of each list is the cluster's pick.
        let mut picks = std::mem::take(&mut self.scratch.picks);
        picks.clear();
        picks.resize(self.cfg.clusters, None);
        for (cluster, pick) in picks.iter_mut().enumerate() {
            for i in 0..self.iq.waiting_len(cluster) {
                let e = self.iq.waiting_entry(cluster, i);
                if self.entry_ready(e, now) {
                    *pick = Some((e.seq, e.id));
                    break;
                }
            }
        }
        for &pick in &picks {
            if let Some((_, id)) = pick {
                self.issue_one(id, now);
            }
        }
        self.scratch.picks = picks;
    }

    fn issue_one(&mut self, id: InstId, now: u64) {
        if let Some(tr) = &mut self.tracer {
            tr.stage(now, id, "Is");
        }
        let y = self.cfg.iq_ex_stages as u64;
        let di = self.slab.expect_mut(id);
        di.issue_cycle = Some(now);
        di.issue_count += 1;
        di.phase = InstPhase::Issued;
        let stamp = di.issue_count;
        let class = di.inst.class();
        let dest = di.dest;
        let slot = di.iq_slot;
        self.iq.mark_issued(slot, id);
        let exec_at = now + y;
        self.exec_events.schedule(exec_at, (id, stamp));

        // Speculative wake-up broadcast: consumers may issue so they reach
        // execute exactly when the (predicted) result forwards.
        if let Some(DestRename { new, .. }) = dest {
            let lat = self.class_latency(class) as u64;
            let speculate_loads = !matches!(self.cfg.load_policy, LoadSpecPolicy::Stall);
            if class != Class::Load || speculate_loads {
                let predicted_complete = exec_at + lat - 1;
                self.set_ready_at(new, (predicted_complete + 1).saturating_sub(y));
            }
            // Under Stall, load consumers wake only once the outcome is
            // known (set in the execute stage).
        }
    }

    /// Deterministic execution latency by class; loads get AGU + L1-hit
    /// here (the speculative schedule), with the true latency applied at
    /// the data-cache access.
    fn class_latency(&self, class: Class) -> u32 {
        let l = &self.cfg.lat;
        match class {
            Class::IntAlu | Class::Branch | Class::CondBranch | Class::Jump => l.int_alu,
            Class::IntMul => l.int_mul,
            Class::FpAdd => l.fp_add,
            Class::FpMul => l.fp_mul,
            Class::FpDiv => l.fp_div,
            Class::Load => l.agu + self.hier.l1d_hit_latency(),
            Class::Store => l.agu,
            Class::MemBar | Class::Halt => 1,
        }
    }

    // --------------------------------------------------------------- execute

    fn do_execute(&mut self, now: u64) {
        let mut due = std::mem::take(&mut self.scratch.exec_due);
        self.exec_events.drain_due(now, &mut due);
        // Oldest-first so same-cycle store→load forwarding within a thread
        // resolves in program order.
        let mut list = std::mem::take(&mut self.scratch.exec_list);
        list.clear();
        list.extend(due.drain(..).filter_map(|e| {
            let (id, stamp) = e.payload;
            let di = self.slab.get(id)?;
            (di.issue_count == stamp && di.phase == InstPhase::Issued)
                .then_some((di.seq, id, stamp))
        }));
        self.scratch.exec_due = due;
        list.sort_unstable_by_key(|&(seq, _, _)| seq);
        for &(_, id, stamp) in &list {
            // An older instruction in this very batch may have squashed or
            // replayed this one (branch recovery, memory trap, shadow
            // kill): re-validate before executing.
            let still_due = self
                .slab
                .get(id)
                .is_some_and(|di| di.issue_count == stamp && di.phase == InstPhase::Issued);
            if still_due {
                self.execute_one(id, now);
            }
        }
        self.scratch.exec_list = list;
    }

    /// Gathered operand values, or the reason execution must abort.
    fn gather_operands(
        &mut self,
        id: InstId,
        now: u64,
    ) -> Result<([u64; 2], [Option<OperandSource>; 2]), ExecAbort> {
        let di = self.slab.expect(id);
        let cluster = di.cluster;
        let srcs = di.srcs;
        let mut vals = [0u64; 2];
        let mut sources = [None; 2];
        for (i, src) in srcs.iter().enumerate() {
            let Some(src) = src else { continue };
            if let Some(v) = src.payload {
                vals[i] = v;
                // A re-acquisition after an operand miss is not a new read.
                sources[i] = match src.obtained {
                    Some(OperandSource::Miss) => None,
                    _ => Some(OperandSource::PreRead),
                };
                continue;
            }
            let p = src.phys;
            if self.avail_cycle[p.index()] >= now {
                // Producer has not produced: load-shadow (or chained)
                // replay.
                return Err(ExecAbort::ProducerNotReady(i));
            }
            match self.cfg.scheme {
                RegisterScheme::Monolithic => {
                    // Forwarding buffer first; older values come from the
                    // monolithic register file read during IQ-EX.
                    if self.fwd.lookup(p, now).is_some() {
                        sources[i] = Some(OperandSource::Forward);
                    } else {
                        sources[i] = Some(OperandSource::RegFile);
                    }
                    vals[i] = self.physfile.read(p);
                }
                RegisterScheme::Dra { .. } => {
                    // Fault injection: force this lookup to miss. Safe
                    // because the producer-not-ready check above already
                    // passed — the value is in the register file, so the
                    // architected miss-recovery path delivers it.
                    if self
                        .injector
                        .as_mut()
                        .is_some_and(|inj| inj.drop_operand(now))
                    {
                        return Err(ExecAbort::OperandMiss(i));
                    }
                    if let Some(v) = self.fwd.lookup(p, now) {
                        vals[i] = v;
                        sources[i] = Some(OperandSource::Forward);
                    } else if let Some(v) = self.crcs[cluster].lookup(p) {
                        vals[i] = v;
                        sources[i] = Some(OperandSource::Crc);
                    } else {
                        return Err(ExecAbort::OperandMiss(i));
                    }
                }
            }
        }
        Ok((vals, sources))
    }

    fn execute_one(&mut self, id: InstId, now: u64) {
        match self.gather_operands(id, now) {
            Ok((vals, sources)) => self.execute_with(id, now, vals, sources),
            Err(ExecAbort::ProducerNotReady(slot)) => {
                // Block until the producer re-broadcasts its wake-up —
                // unless the value is completing this very cycle (no
                // further broadcast is coming; a plain retry suffices).
                {
                    let version = {
                        let di = self.slab.expect(id);
                        di.srcs[slot].and_then(|s| {
                            (self.avail_cycle[s.phys.index()] == u64::MAX)
                                .then(|| self.ready_version[s.phys.index()])
                        })
                    };
                    let di = self.slab.expect_mut(id);
                    if let Some(src) = di.srcs[slot].as_mut() {
                        src.blocked_version = version;
                    }
                }
                self.replay(id, ReplayCause::Producer)
            }
            Err(ExecAbort::OperandMiss(slot)) => self.operand_miss(id, slot, now),
        }
    }

    /// Put an issued instruction back to Waiting (it will reissue).
    fn replay(&mut self, id: InstId, cause: ReplayCause) {
        if let Some(tr) = &mut self.tracer {
            tr.stage(self.cycle, id, "Q");
        }
        let di = self.slab.expect_mut(id);
        di.phase = InstPhase::InIq;
        di.needs_replay = true;
        di.replay_component = Some(match cause {
            ReplayCause::Producer | ReplayCause::Shadow => CpiComponent::LoadResolution,
            ReplayCause::OperandMiss => CpiComponent::OperandResolution,
        });
        // Withdraw the speculative wake-up this issue broadcast: the
        // result is NOT coming on the predicted schedule. Consumers go
        // back to waiting until the replayed issue re-broadcasts;
        // otherwise they spin through issue -> execute -> replay.
        let dest = di.dest;
        if let Some(DestRename { new, .. }) = dest {
            if self.avail_cycle[new.index()] == u64::MAX {
                self.set_ready_at(new, u64::MAX);
            }
        }
        let slot = self.slab.expect(id).iq_slot;
        self.iq.mark_waiting(slot, id);
        match cause {
            // Producer-not-ready chains are rooted at mis-speculated loads
            // (deterministic-latency producers never disappoint their
            // consumers) — the paper's load-resolution-loop useless work.
            ReplayCause::Producer => self.stats.load_replays += 1,
            ReplayCause::OperandMiss => self.stats.operand_replays += 1,
            ReplayCause::Shadow => self.stats.shadow_replays += 1,
        }
    }

    /// DRA operand-resolution-loop mis-speculation: the value exists only
    /// in the register file. Read it there, deliver to the payload, replay,
    /// and stall the front end while the recovery runs (paper §5.4).
    fn operand_miss(&mut self, id: InstId, slot: usize, now: u64) {
        if std::env::var_os("LOOSELOOPS_DEBUG_MISS").is_some() {
            let di = self.slab.expect(id);
            let src = di.srcs[slot].as_ref().unwrap();
            eprintln!(
                "MISS pc={} inst={} arch={} phys={} cluster={} gap={} itable={} crc_has={} crc_len={}",
                di.pc, di.inst, src.arch, src.phys, di.cluster,
                now.saturating_sub(self.avail_cycle[src.phys.index()]),
                self.itables[di.cluster].count(src.phys),
                self.crcs[di.cluster].probe(src.phys).is_some(),
                self.crcs[di.cluster].len(),
            );
        }
        self.stats.operand_misses += 1;
        self.stats.operand_sources[4] += 1; // Miss bucket
        let delivery = now + self.cfg.rf_read_latency as u64;
        self.frontend_stall_until = self.frontend_stall_until.max(delivery);
        let y = self.cfg.iq_ex_stages as u64;
        let di = self.slab.expect_mut(id);
        let phys = di.srcs[slot].as_ref().expect("missing operand slot").phys;
        let src = di.srcs[slot].as_mut().expect("missing operand slot");
        src.obtained = Some(OperandSource::Miss);
        src.ready_at = (delivery + 1).saturating_sub(y);
        let value = self.physfile.read(phys);
        let src = self.slab.expect_mut(id).srcs[slot].as_mut().expect("slot");
        src.payload = Some(value);
        self.replay(id, ReplayCause::OperandMiss);
    }

    fn execute_with(
        &mut self,
        id: InstId,
        now: u64,
        vals: [u64; 2],
        sources: [Option<OperandSource>; 2],
    ) {
        if let Some(tr) = &mut self.tracer {
            tr.stage(now, id, "X");
        }
        // Commit operand bookkeeping (stats + DRA insertion-table
        // decrements) only on successful execution.
        let (cluster, srcs_snapshot) = {
            let di = self.slab.expect(id);
            (di.cluster, di.srcs)
        };
        for (i, s) in sources.iter().enumerate() {
            let Some(s) = s else { continue };
            let bucket = match s {
                OperandSource::PreRead => 0,
                OperandSource::Forward => 1,
                OperandSource::Crc => 2,
                OperandSource::RegFile => 3,
                OperandSource::Miss => 4,
            };
            self.stats.operand_sources[bucket] += 1;
            if *s == OperandSource::Forward && self.cfg.scheme.is_dra() {
                if let Some(src) = &srcs_snapshot[i] {
                    self.itables[cluster].decrement(src.phys);
                    if let Some(slot) = self.slab.expect_mut(id).srcs[i].as_mut() {
                        slot.itable_pending = false;
                    }
                }
            }
        }
        // Record operand availability (Figure 6).
        {
            let rename_cycle = self.slab.expect(id).rename_cycle;
            let mut avail = [None, None];
            for (i, src) in srcs_snapshot.iter().enumerate() {
                let Some(src) = src else { continue };
                let a = if src.payload.is_some() {
                    rename_cycle
                } else {
                    self.avail_cycle[src.phys.index()].max(rename_cycle)
                };
                avail[i] = Some(a);
            }
            let di = self.slab.expect_mut(id);
            for (i, a) in avail.into_iter().enumerate() {
                if let (Some(slot), Some(a)) = (di.srcs[i].as_mut(), a) {
                    slot.avail_cycle = Some(a);
                    if slot.obtained.is_none() {
                        slot.obtained = sources[i];
                    }
                }
            }
        }

        let di = self.slab.expect(id);
        let (inst, pc, t, seq) = (di.inst, di.pc, di.thread, di.seq);
        let s1 = if inst.rs1.is_zero() { 0 } else { vals[0] };
        let s2 = if inst.uses_imm {
            inst.imm as i64 as u64
        } else if inst.rs2.is_zero() {
            0
        } else {
            vals[1]
        };

        match inst.class() {
            Class::Load => self.execute_load(id, now, s1),
            Class::Store => self.execute_store(id, now, s1, s2),
            Class::CondBranch | Class::Branch | Class::Jump => self.execute_control(id, now, s1),
            Class::IntAlu | Class::IntMul | Class::FpAdd | Class::FpMul | Class::FpDiv => {
                let result = if inst.op == Opcode::Nop {
                    0
                } else {
                    eval_op(inst.op, s1, s2)
                };
                let lat = self.class_latency(inst.class()) as u64;
                self.finish_exec(id, now, now + lat - 1, Some(result), pc + 1, true);
            }
            Class::MemBar | Class::Halt => {
                unreachable!("barriers and halts never enter the IQ (thread {t}, seq {seq})")
            }
        }
    }

    /// Common execute epilogue: confirm the IQ entry, schedule completion.
    /// `broadcast` re-anchors the destination wake-up immediately; load
    /// misses pass `false` and deliver the correction later, after the
    /// load-resolution loop's feedback delay (see `execute_load`).
    fn finish_exec(
        &mut self,
        id: InstId,
        now: u64,
        complete_at: u64,
        result: Option<u64>,
        next_pc: u64,
        broadcast: bool,
    ) {
        let free_at = now + self.cfg.confirm_feedback as u64 + self.cfg.iq_clear_extra as u64;
        let slot = self.slab.expect(id).iq_slot;
        self.iq.mark_confirmed(slot, id, free_at);
        let y = self.cfg.iq_ex_stages as u64;
        let di = self.slab.expect_mut(id);
        di.result = result;
        di.next_pc = Some(next_pc);
        let stamp = di.issue_count;
        let dest = di.dest;
        if broadcast {
            if let Some(DestRename { new, .. }) = dest {
                // Re-anchor the wake-up to the true completion time.
                self.set_ready_at(new, (complete_at + 1).saturating_sub(y));
            }
        }
        self.complete_events
            .schedule(complete_at.max(now), (id, stamp));
    }

    fn execute_load(&mut self, id: InstId, now: u64, base: u64) {
        let agu = self.cfg.lat.agu as u64;
        let y = self.cfg.iq_ex_stages as u64;
        let (inst, t, seq, pc) = {
            let di = self.slab.expect(id);
            (di.inst, di.thread, di.seq, di.pc)
        };
        let addr = base.wrapping_add(inst.imm as i64 as u64);
        let size: u8 = if inst.op == Opcode::Ldl { 4 } else { 8 };

        // Memory-dependence check against older in-flight stores.
        let mut forwarded: Option<u64> = None;
        let mut conflict_pending = false;
        for &sid in self.threads[t].store_q.iter().rev() {
            let s = self.slab.expect(sid);
            if s.seq >= seq {
                continue;
            }
            match s.mem_addr {
                Some(sa) if overlaps(sa, (addr, size)) => {
                    if contains(sa, (addr, size)) {
                        forwarded = Some(forward_value(
                            sa,
                            s.store_data.expect("store data"),
                            (addr, size),
                        ));
                    } else {
                        conflict_pending = true; // partial overlap: wait it out
                    }
                    break; // newest older store wins
                }
                Some(_) => continue,
                None => {} // unknown address: speculate past it
            }
        }
        if conflict_pending {
            // Rare partial-overlap case: retry once the store has retired.
            let di = self.slab.expect_mut(id);
            if let Some(src) = di.srcs[0].as_mut() {
                src.ready_at = ((now + 4 + 1).saturating_sub(y)).max(src.ready_at);
                if src.payload.is_none() {
                    src.payload = Some(base);
                }
            }
            self.replay(id, ReplayCause::Producer);
            return;
        }

        // Timed cache access (wrong-path loads pollute realistically).
        let access = self.hier.access(AccessKind::DataRead, addr, now + agu - 1);
        // Train the optional stream prefetcher on demand loads.
        self.hier.observe_load(pc, addr);
        let hit = access.is_l1_hit();
        // Fault injection: a latency spike delays the value. Scheduling
        // treats a spiked hit as a miss (so the delayed wake-up correction
        // reaches consumers); the L1 hit/miss *stats* keep the real cache
        // outcome.
        let spike = self
            .injector
            .as_mut()
            .and_then(|inj| inj.load_spike(now))
            .unwrap_or(0);
        let sched_hit = hit && spike == 0;
        let complete_at = now + agu - 1 + access.latency as u64 + spike;
        let value = forwarded.unwrap_or_else(|| self.data_mem.read(addr, size));

        self.stats.loads += 1;
        self.stats
            .record_load_latency(agu + access.latency as u64 + spike);
        if hit {
            self.stats.load_l1_hits += 1;
        } else {
            self.stats.load_l1_misses += 1;
        }

        {
            let di = self.slab.expect_mut(id);
            di.mem_addr = Some((addr, size));
            di.load_l1_hit = Some(hit);
            di.tlb_trap = access.tlb_trap;
        }

        // The load-resolution loop: hit/miss becomes known at the end of
        // the (speculatively scheduled) hit latency.
        let known_at = now + agu - 1 + self.hier.l1d_hit_latency() as u64;
        if !sched_hit {
            match self.cfg.load_policy {
                LoadSpecPolicy::Stall | LoadSpecPolicy::ReissueTree => {}
                LoadSpecPolicy::ReissueShadow => self.kill_load_shadow(id, t),
                LoadSpecPolicy::Refetch => {
                    self.finish_exec(id, now, complete_at, Some(value), pc + 1, true);
                    self.refetch_after_load(id, known_at);
                    return;
                }
            }
        }
        if matches!(self.cfg.load_policy, LoadSpecPolicy::Stall) {
            // Consumers were never woken speculatively; wake them for the
            // known outcome, no earlier than the determination point.
            if let Some(DestRename { new, .. }) = self.slab.expect(id).dest {
                let v = ((complete_at + 1).saturating_sub(y)).max(known_at + 1);
                self.set_ready_at(new, v);
            }
            let di = self.slab.expect_mut(id);
            let stamp = di.issue_count;
            di.next_pc = Some(pc + 1);
            di.result = Some(value);
            let free_at = now + self.cfg.confirm_feedback as u64 + self.cfg.iq_clear_extra as u64;
            let slot = self.slab.expect(id).iq_slot;
            self.iq.mark_confirmed(slot, id, free_at);
            self.complete_events.schedule(complete_at, (id, stamp));
            return;
        }
        if sched_hit {
            self.finish_exec(id, now, complete_at, Some(value), pc + 1, true);
        } else {
            // The IQ keeps issuing against the stale hit-assumed schedule
            // until the miss signal traverses the load-resolution loop's
            // feedback path; only then does the corrected wake-up land.
            self.finish_exec(id, now, complete_at, Some(value), pc + 1, false);
            let stamp = self.slab.expect(id).issue_count;
            let corrected = (complete_at + 1).saturating_sub(y);
            self.wakeup_events.schedule(
                known_at + self.cfg.confirm_feedback as u64,
                (id, stamp, corrected),
            );
        }
    }

    /// 21264-style recovery: kill every issued-but-unconfirmed instruction
    /// of the thread (in the load shadow), dependent or not.
    fn kill_load_shadow(&mut self, load: InstId, t: usize) {
        let load_seq = self.slab.expect(load).seq;
        let mut to_replay = std::mem::take(&mut self.scratch.to_replay);
        to_replay.clear();
        to_replay.extend(self.iq.iter().filter_map(|e| {
            (e.thread == t
                && e.seq > load_seq
                && matches!(e.state, IqState::Issued)
                && e.id != load)
                .then_some(e.id)
        }));
        for &id in &to_replay {
            self.replay(id, ReplayCause::Shadow);
        }
        self.scratch.to_replay = to_replay;
    }

    /// Refetch recovery for a load miss: squash everything after the load
    /// and refetch from the next instruction.
    fn refetch_after_load(&mut self, load: InstId, redirect_at: u64) {
        let (t, seq, pc) = {
            let di = self.slab.expect(load);
            (di.thread, di.seq, di.pc)
        };
        self.squash_after(
            t,
            seq,
            pc + 1,
            redirect_at + 1,
            CpiComponent::LoadResolution,
        );
    }

    fn execute_store(&mut self, id: InstId, now: u64, base: u64, data: u64) {
        let (inst, t, seq, pc) = {
            let di = self.slab.expect(id);
            (di.inst, di.thread, di.seq, di.pc)
        };
        let addr = base.wrapping_add(inst.imm as i64 as u64);
        let size: u8 = if inst.op == Opcode::Stl { 4 } else { 8 };
        {
            let di = self.slab.expect_mut(id);
            di.mem_addr = Some((addr, size));
            di.store_data = Some(data);
        }

        // Memory-order violation: a younger load of ours already executed
        // against an overlapping address (it read stale data).
        let mut violator: Option<(u64, InstId)> = None;
        for &lid in &self.threads[t].rob {
            let l = self.slab.expect(lid);
            if l.seq <= seq || l.inst.class() != Class::Load {
                continue;
            }
            if let Some(la) = l.mem_addr {
                if overlaps((addr, size), la)
                    && matches!(l.phase, InstPhase::Issued | InstPhase::Complete)
                    && violator.map(|(s, _)| l.seq < s).unwrap_or(true)
                {
                    violator = Some((l.seq, lid));
                }
            }
        }
        let complete_at = now + self.cfg.lat.agu as u64 - 1;
        self.finish_exec(id, now, complete_at.max(now), None, pc + 1, true);

        if let Some((_, lid)) = violator {
            let (lseq, lpc) = {
                let l = self.slab.expect(lid);
                (l.seq, l.pc)
            };
            self.stats.mem_order_traps += 1;
            self.store_wait.mark(lpc);
            // Recovery stage is fetch (paper Figure 2, memory trap loop):
            // squash from the violating load inclusive and refetch it.
            self.squash_after(t, lseq - 1, lpc, now + 1, CpiComponent::MemoryTrap);
        }
    }

    fn execute_control(&mut self, id: InstId, now: u64, s1: u64) {
        let (inst, pc, t) = {
            let di = self.slab.expect(id);
            (di.inst, di.pc, di.thread)
        };
        let fall = pc + 1;
        let (taken, target) = match inst.class() {
            Class::CondBranch => {
                let tk = branch_taken(inst.op, s1);
                (
                    tk,
                    if tk {
                        (fall as i64 + inst.imm as i64) as u64
                    } else {
                        fall
                    },
                )
            }
            Class::Branch => (true, (fall as i64 + inst.imm as i64) as u64),
            Class::Jump => (true, s1),
            _ => unreachable!(),
        };
        let result = inst.dest().map(|_| fall); // link value for jsr/jmp

        // Prediction tables are trained at retire (in order, correct path
        // only); execute handles only detection and history repair.
        if inst.class() == Class::CondBranch {
            let di = self.slab.expect_mut(id);
            if di.holds_checkpoint {
                di.holds_checkpoint = false;
                self.threads[t].unresolved_branches -= 1;
            }
        }

        let (pred_next, history) = {
            let di = self.slab.expect_mut(id);
            di.taken = Some(taken);
            // invariant: predict_control stamped a prediction on every
            // control instruction at fetch, before it could reach execute.
            let p = di
                .pred
                .as_ref()
                .expect("control instructions carry predictions");
            (p.next_pc, p.history)
        };

        let lat = self.cfg.lat.int_alu as u64;
        self.finish_exec(id, now, now + lat - 1, result, target, true);

        if pred_next != target {
            // Mis-speculation on the branch-resolution loop.
            if inst.class() == Class::CondBranch {
                self.stats.branch_mispredicts += 1;
            } else {
                self.stats.target_mispredicts += 1;
            }
            self.stats.branch_squashes += 1;
            // Restore speculative history to the pre-branch snapshot, then
            // shift the true outcome in.
            self.pred.restore_history(history);
            if inst.class() == Class::CondBranch {
                self.pred.speculate_history(taken);
                let ctx = self.slab.expect(id).pred.as_ref().expect("prediction").ctx;
                self.pred.repair(pc, ctx, taken);
            }
            let seq = self.slab.expect(id).seq;
            let ras = self.slab.expect_mut(id).ras_ckpt.take();
            if let Some(ras) = ras {
                self.threads[t].ras.restore_fixed(&ras);
                // Redo this instruction's own RAS effect.
                match inst.op {
                    Opcode::Jsr => self.threads[t].ras.push(fall),
                    Opcode::Ret => {
                        let _ = self.threads[t].ras.pop();
                    }
                    _ => {}
                }
            }
            // Branch-resolution feedback delay: one cycle.
            #[allow(unused_mut)]
            let mut redirect = target;
            #[cfg(feature = "chaos")]
            if self.cfg.chaos_branch_recovery_off_by_one && inst.class() == Class::CondBranch {
                // Seeded defect for the differential fuzzer: the recovery
                // redirect (not the architectural next_pc) lands one
                // instruction late, so post-recovery retirement diverges
                // from the oracle.
                redirect = redirect.wrapping_add(1);
            }
            self.squash_after(t, seq, redirect, now + 1, CpiComponent::BranchResolution);
        }
    }

    // -------------------------------------------------------------- complete

    fn do_complete(&mut self, now: u64) {
        // Drain every due bucket. Results scheduled "for this cycle" during
        // a later stage of the previous iteration (single-cycle ops
        // complete in their execute cycle) are picked up here, one
        // simulator iteration later, stamped with their true cycle (the
        // wheel preserves each event's requested cycle).
        let mut drained = std::mem::take(&mut self.scratch.complete_due);
        self.complete_events.drain_due(now, &mut drained);
        let mut due = std::mem::take(&mut self.scratch.due);
        due.clear();
        due.extend(drained.drain(..).filter_map(|e| {
            let (id, stamp) = e.payload;
            let di = self.slab.get(id)?;
            (di.issue_count == stamp).then_some((di.seq, id, stamp, e.cycle))
        }));
        self.scratch.complete_due = drained;
        due.sort_unstable_by_key(|&(seq, _, _, _)| seq);
        for &(_, id, _, cyc) in &due {
            if let Some(tr) = &mut self.tracer {
                tr.stage(now, id, "Cm");
            }
            let di = self.slab.expect_mut(id);
            di.phase = InstPhase::Complete;
            di.complete_cycle = Some(cyc);
            let (dest, result) = (di.dest, di.result);
            if let (Some(DestRename { new, .. }), Some(v)) = (dest, result) {
                self.physfile.write(new, v);
                self.fwd.insert(new, v, cyc);
                self.avail_cycle[new.index()] = cyc;
                let y = self.cfg.iq_ex_stages as u64;
                let nv = self.ready_at[new.index()].min((cyc + 1).saturating_sub(y));
                self.set_ready_at(new, nv);
            }
        }
        self.scratch.due = due;
    }

    // ------------------------------------------------------------- writeback

    /// Register-file write-back: values leaving the forwarding buffer
    /// become pre-readable (RPFT) and, under the DRA, are captured by the
    /// cluster register caches whose insertion tables show outstanding
    /// consumers.
    fn do_writeback(&mut self, now: u64) {
        let mut expiring = std::mem::take(&mut self.scratch.expiring);
        self.fwd.expiring_into(now, &mut expiring);
        for &(p, v) in &expiring {
            self.rpft.on_writeback(p);
            if self.cfg.scheme.is_dra() {
                for c in 0..self.cfg.clusters {
                    if self.itables[c].take_at_writeback(p) {
                        self.crcs[c].insert(p, v);
                    }
                }
            }
        }
        self.scratch.expiring = expiring;
        self.fwd.evict_expired(now);
    }

    // ---------------------------------------------------------------- retire

    fn do_retire(&mut self, now: u64) -> u64 {
        let mut budget = self.cfg.width;
        let nthreads = self.threads.len();
        let mut blocked = std::mem::take(&mut self.scratch.blocked);
        blocked.clear();
        blocked.resize(nthreads, false);
        #[allow(clippy::needless_range_loop)] // t also indexes self.threads
        'outer: loop {
            let mut progress = false;
            for t in 0..nthreads {
                if budget == 0 {
                    break 'outer;
                }
                if blocked[t] || self.threads[t].done {
                    blocked[t] = true;
                    continue;
                }
                let Some(&id) = self.threads[t].rob.front() else {
                    blocked[t] = true;
                    continue;
                };
                let di = self.slab.expect(id);
                if di.phase != InstPhase::Complete {
                    blocked[t] = true;
                    continue;
                }
                self.retire_one(t, id, now);
                budget -= 1;
                progress = true;
                if self.threads[t].done {
                    blocked[t] = true;
                }
            }
            if !progress {
                break;
            }
        }
        self.scratch.blocked = blocked;
        (self.cfg.width - budget) as u64
    }

    /// Charge this cycle's retire slots to the per-loop CPI stack:
    /// `retired` slots used, the rest lost to a single classified cause.
    fn attribute_cycle(&mut self, now: u64, retired: u64) {
        let width = self.cfg.width as u64;
        let cause = if retired < width {
            self.classify_lost_cycle(now)
        } else {
            CpiComponent::Base
        };
        self.stats.loop_cost.charge(width, retired, cause);
    }

    /// Why retire could not fill its slots this cycle. Inspects the oldest
    /// un-retired instruction across live threads (the commit bottleneck)
    /// and the thread's refill state after a squash.
    fn classify_lost_cycle(&self, now: u64) -> CpiComponent {
        // Oldest ROB head across not-done threads: the instruction the
        // retire stage is actually waiting on.
        let mut oldest: Option<(u64, usize, InstId)> = None;
        for (t, th) in self.threads.iter().enumerate() {
            if th.done {
                continue;
            }
            if let Some(&id) = th.rob.front() {
                let seq = self.slab.expect(id).seq;
                if oldest.is_none_or(|(s, _, _)| seq < s) {
                    oldest = Some((seq, t, id));
                }
            }
        }
        let Some((_, t, id)) = oldest else {
            // Every live ROB is empty: the pipe is refilling. Charge the
            // squash/barrier that caused it when known, else the DRA
            // operand-recovery stall, else the front end.
            for th in &self.threads {
                if !th.done {
                    if let Some((_, c)) = th.refill_cause {
                        return c;
                    }
                }
            }
            if self.threads.iter().all(|th| th.done) {
                return CpiComponent::Base; // end-of-program drain
            }
            if now < self.frontend_stall_until {
                return CpiComponent::OperandResolution;
            }
            return CpiComponent::Frontend;
        };
        let di = self.slab.expect(id);
        match di.phase {
            // Renamed but still in DEC-IQ transit: the window is refilling.
            InstPhase::FrontEnd => self.threads[t]
                .refill_cause
                .map(|(_, c)| c)
                .unwrap_or(CpiComponent::Frontend),
            InstPhase::InIq | InstPhase::Issued => {
                // A head load waiting on a confirmed L1 miss is memory
                // latency, not a loose loop.
                if di.inst.class() == Class::Load && di.load_l1_hit == Some(false) {
                    return CpiComponent::MemoryLatency;
                }
                if let Some(c) = di.replay_component {
                    return c;
                }
                CpiComponent::Base
            }
            // A Complete head means the width budget ran out mid-group or
            // another thread consumed the slots: steady-state cost.
            InstPhase::Complete | InstPhase::Retired => CpiComponent::Base,
        }
    }

    fn retire_one(&mut self, t: usize, id: InstId, now: u64) {
        let di = self.slab.expect(id);
        let (inst, pc, seq, tlb_trap) = (di.inst, di.pc, di.seq, di.tlb_trap);
        let pred_ctx = di.pred.as_ref().map(|p| p.ctx);
        // invariant: only Complete-phase instructions retire, and every
        // path into Complete (finish_exec, rename of barriers/halts, the
        // Stall-policy load path) sets next_pc first.
        let next_pc = di
            .next_pc
            .expect("complete instructions know their next pc");
        let retired = Retired {
            pc,
            inst,
            wrote: di
                .dest
                .map(|d| (d.arch, di.result.expect("dest implies result"))),
            mem_addr: di.mem_addr,
            taken: di.taken.or(match inst.class() {
                Class::CondBranch => Some(next_pc != pc + 1),
                Class::Branch | Class::Jump => Some(true),
                _ => None,
            }),
            next_pc,
        };

        // Stores drain to memory at retire.
        if inst.class() == Class::Store {
            let (addr, size) = di.mem_addr.expect("stores know their address");
            let data = di.store_data.expect("stores stage their data");
            self.data_mem.write(addr, size, data);
            self.hier.access(AccessKind::DataWrite, addr, now);
            let front = self.threads[t].store_q.pop_front();
            debug_assert_eq!(front, Some(id), "stores retire in order");
        }

        if let Some(DestRename { prev, .. }) = di.dest {
            self.freelist.release(prev);
        }
        match inst.class() {
            Class::CondBranch => {
                self.stats.branches += 1;
                let ctx = pred_ctx.expect("conditional branches carry predictions");
                self.pred
                    .train_ctx(pc, ctx, retired.taken.expect("resolved branch"));
            }
            Class::Jump => {
                self.btb.update(pc, next_pc);
            }
            _ => {}
        }
        // Refill accounting: an instruction younger than the pending
        // squash/barrier marker retiring means the refill has delivered.
        if self.threads[t]
            .refill_cause
            .is_some_and(|(marker, _)| seq > marker)
        {
            self.threads[t].refill_cause = None;
        }
        match inst.class() {
            Class::MemBar => {
                self.stats.mem_barriers += 1;
                if self.threads[t].mb_stall_seq == Some(seq) {
                    self.threads[t].mb_stall_seq = None;
                }
                // The rename stall behind the barrier drains the window;
                // charge the bubble until post-barrier work retires.
                self.threads[t].refill_cause = Some((seq, CpiComponent::MemoryBarrier));
            }
            Class::Halt => {
                self.threads[t].done = true;
            }
            _ => {}
        }

        // Figure 6: operand availability gap, measured on retired
        // (correct-path) instructions.
        {
            let di = self.slab.expect(id);
            let mut a = [0u64; 2];
            let mut n = 0;
            for s in di.srcs.iter().flatten() {
                if let Some(c) = s.avail_cycle {
                    a[n & 1] = c;
                    n += 1;
                }
            }
            let gap = if n == 2 { a[0].abs_diff(a[1]) } else { 0 };
            self.stats.record_gap(gap);
        }

        // Oracle check.
        {
            let th = &mut self.threads[t];
            if let Some((oracle, omem)) = &mut th.oracle {
                let expect = oracle.step(&th.program, omem).expect("oracle keeps pace");
                assert_eq!(
                    expect, retired,
                    "retire stream diverged from the functional model at thread {t} pc {pc} (cycle {now})"
                );
            }
        }
        if let Some(log) = &mut self.retire_capture {
            log.push((t, retired));
        }
        self.threads[t].arch_pc = next_pc;

        if let Some(tr) = &mut self.tracer {
            tr.retire(now, id);
        }
        self.threads[t].rob.pop_front();
        self.slab.release(id);
        self.stats.retired[t] += 1;

        // Post-retire traps: dTLB miss (recovery from the top of the pipe).
        if tlb_trap && !self.threads[t].done {
            self.stats.tlb_traps += 1;
            self.squash_after(t, seq, next_pc, now + 1, CpiComponent::MemoryTrap);
        }
    }

    // ---------------------------------------------------------------- squash

    /// Kill every instruction of `thread` younger than `after_seq`, roll
    /// back rename state, and redirect fetch to `new_pc` at `redirect_at`.
    /// The refill bubble that follows is charged to `cause` in the
    /// per-loop CPI stack until post-squash work retires.
    fn squash_after(
        &mut self,
        thread: usize,
        after_seq: u64,
        new_pc: u64,
        redirect_at: u64,
        cause: CpiComponent,
    ) {
        // Front-end queues: not yet renamed (decode_q) — just drop.
        let mut dropped = std::mem::take(&mut self.scratch.dropped);
        dropped.clear();
        let th = &mut self.threads[thread];
        while let Some(&(_, id)) = th.decode_q.back() {
            if self.slab.expect(id).seq > after_seq {
                th.decode_q.pop_back();
                dropped.push(id);
            } else {
                break;
            }
        }
        th.transit_q.retain(|&(_, id)| {
            // Renamed instructions also sit in the ROB; the ROB walk below
            // releases them.
            self.slab.expect(id).seq <= after_seq
        });
        th.store_q
            .retain(|&id| self.slab.expect(id).seq <= after_seq);
        if th.mb_stall_seq.is_some_and(|s| s > after_seq) {
            th.mb_stall_seq = None;
        }

        // IQ entries (their slab records are released by the ROB walk).
        self.iq.squash(|e| e.thread == thread && e.seq > after_seq);

        // ROB walk, youngest first: rename rollback + slab release.
        while let Some(&id) = self.threads[thread].rob.back() {
            let di = self.slab.expect(id);
            if di.seq <= after_seq {
                break;
            }
            self.stats.squashed += 1;
            if di.issue_count > 0 {
                self.stats.squashed_after_issue += 1;
            }
            if di.phase == InstPhase::FrontEnd {
                // Still in DEC-IQ transit: release its slotting pressure.
                self.cluster_pressure[di.cluster] -= 1;
            }
            if di.holds_checkpoint {
                self.threads[thread].unresolved_branches -= 1;
            }
            // Optional idealization: undo this consumer's outstanding
            // insertion-table increments (real hardware leaves the 2-bit
            // counters polluted by wrong-path consumers).
            if self.cfg.scheme.is_dra() && self.cfg.dra_ideal_squash_cleanup {
                let cluster = di.cluster;
                let mut pend = [None; 2];
                for (i, s) in di.srcs.iter().flatten().enumerate() {
                    if s.itable_pending {
                        pend[i & 1] = Some(s.phys);
                    }
                }
                for p in pend.into_iter().flatten() {
                    self.itables[cluster].decrement(p);
                }
            }
            let di = self.slab.expect(id);
            if let Some(DestRename { arch, new, prev }) = di.dest {
                self.rename[thread].rollback(arch, prev, &mut self.freelist);
                // The squashed allocation must never satisfy later lookups.
                self.fwd.invalidate(new);
                for c in &mut self.crcs {
                    c.invalidate(new);
                }
                for it in &mut self.itables {
                    it.clear(new);
                }
                self.ready_at[new.index()] = 0;
                self.avail_cycle[new.index()] = 0;
                self.physfile.mark_ready(new);
            }
            if let Some(tr) = &mut self.tracer {
                tr.flush(self.cycle, id);
            }
            self.threads[thread].rob.pop_back();
            self.slab.release(id);
        }
        for &id in &dropped {
            self.stats.squashed += 1;
            if let Some(tr) = &mut self.tracer {
                tr.flush(self.cycle, id);
            }
            self.slab.release(id);
        }
        self.scratch.dropped = dropped;

        // Fetch redirect.
        let th = &mut self.threads[thread];
        th.fetch_pc = new_pc;
        th.fetch_suspended = false;
        th.fetch_stall_until = th.fetch_stall_until.max(redirect_at);
        // Everything fetched after this point carries seq > self.seq; until
        // one of those retires, lost retire slots belong to this squash.
        th.refill_cause = Some((self.seq, cause));
    }
}

/// Why execution could not proceed.
enum ExecAbort {
    /// The source at this slot has an in-flight producer (load shadow).
    ProducerNotReady(usize),
    /// DRA: source at the given slot missed payload/forward/CRC.
    OperandMiss(usize),
}

/// Replay-cause attribution for useless-work statistics.
enum ReplayCause {
    Producer,
    OperandMiss,
    Shadow,
}

#[cfg(test)]
mod timing_tests {
    use super::*;

    /// The paper's load-resolution-loop arithmetic: an IQ entry issued at T
    /// is confirmed at T + IQ-EX + feedback and cleared one cycle later.
    #[test]
    fn iq_entries_are_retained_for_the_loop_delay() {
        let prog = looseloops_isa::asm::assemble(
            "addi r1, r31, 5\ntop:\nadd r2, r2, r1\nsubi r1, r1, 1\nbne r1, top\nhalt",
        )
        .unwrap();
        let cfg = PipelineConfig::base();
        let loop_delay = cfg.load_loop_delay() as u64; // 8
        let clear = cfg.iq_clear_extra as u64;
        let mut m = Machine::new(cfg, vec![prog]).unwrap();
        m.enable_verification();
        // Step until the first instruction issues, then watch its entry.
        let mut issued_at = None;
        let mut freed_at = None;
        for _ in 0..2000 {
            m.step_cycle();
            let held: Vec<u64> = m.iq.iter().map(|e| e.seq).collect();
            if issued_at.is_none() {
                if let Some(e) = m.iq.iter().find(|e| e.seq == 1) {
                    if !matches!(e.state, IqState::Waiting) {
                        issued_at = Some(m.slab.expect(e.id).issue_cycle.unwrap());
                    }
                }
            } else if freed_at.is_none() && !held.contains(&1) {
                freed_at = Some(m.cycle() - 1);
            }
            if m.is_done() {
                break;
            }
        }
        assert!(m.is_done());
        let (issued, freed) = (issued_at.unwrap(), freed_at.unwrap());
        assert_eq!(
            freed,
            issued + loop_delay + clear,
            "entry must persist for the load-resolution loop delay plus the clear cycle"
        );
    }

    /// Back-to-back dependent single-cycle ALU ops execute in consecutive
    /// cycles (the forwarding tight loop).
    #[test]
    fn dependent_alu_chain_is_back_to_back() {
        let prog = looseloops_isa::asm::assemble(
            "addi r1, r31, 1\naddi r1, r1, 1\naddi r1, r1, 1\naddi r1, r1, 1\nhalt",
        )
        .unwrap();
        let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
        m.enable_verification();
        let mut exec_cycles = Vec::new();
        for _ in 0..2000 {
            m.step_cycle();
            if m.is_done() {
                break;
            }
        }
        assert!(m.is_done());
        // Re-run capturing completion cycles via a fresh machine and the
        // retire capture (completion separation == 1 implies back-to-back).
        let prog = looseloops_isa::asm::assemble(
            "addi r1, r31, 1\naddi r1, r1, 1\naddi r1, r1, 1\naddi r1, r1, 1\nhalt",
        )
        .unwrap();
        let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
        loop {
            m.step_cycle();
            for e in m.iq.iter() {
                if let Some(di) = m.slab.get(e.id) {
                    if let Some(c) = di.complete_cycle {
                        if !exec_cycles.contains(&(di.seq, c)) {
                            exec_cycles.push((di.seq, c));
                        }
                    }
                }
            }
            if m.is_done() || m.cycle() > 2000 {
                break;
            }
        }
        assert!(m.is_done());
        exec_cycles.sort_unstable();
        exec_cycles.dedup_by_key(|&mut (s, _)| s);
        for w in exec_cycles.windows(2) {
            assert_eq!(
                w[1].1 - w[0].1,
                1,
                "dependent adds must complete in consecutive cycles: {exec_cycles:?}"
            );
        }
    }
}
