//! The cycle-level machine model.
//!
//! An execution-driven, 8-wide, clustered, SMT out-of-order pipeline with
//! explicit signal-propagation delays: wake-ups, confirmations, redirects
//! and miss signals all ride delay lines rather than acting instantly —
//! the property the paper credits ASIM with enforcing.
//!
//! Stage order within a cycle is reverse (retire → … → fetch) so that no
//! information computed in a stage can be consumed by an earlier stage in
//! the same cycle.

use crate::config::{LoadSpecPolicy, PipelineConfig, RegisterScheme};
use crate::dyninst::{
    BranchPrediction, DestRename, InstId, InstPhase, InstSlab, OperandSource, SrcOperand, NO_CYCLE,
};
use crate::error::{DeadlockError, PipelineSnapshot, SimError, ThreadSnapshot};
use crate::faults::FaultInjector;
use crate::iq::{IqEntry, IqState, IssueQueue};
use crate::lsq::{contains, forward_value, overlaps, StoreWaitTable};
use crate::stats::{CpiComponent, SimStats};
use crate::trace::PipelineTracer;
use crate::wheel::{Due, TimingWheel};
use looseloops_branch::{
    build_predictor, Btb, DirectionPredictor, LinePredictor, ReturnAddressStack,
};
use looseloops_isa::{
    branch_taken, eval_op, ArchState, BranchKind, Class, FlatMemory, Memory, Opcode, Predecode,
    Program, Retired, StaticInstInfo,
};
use looseloops_mem::{AccessKind, MemHierarchy};
use looseloops_regs::{
    ClusterRegCache, ForwardingBuffer, FreeList, InsertionTable, PhysReg, PhysRegFile, RenameMap,
    Rpft,
};
use std::collections::VecDeque;

/// Bucket count for the event wheels. Most delays are bounded by small
/// config latencies (issue-to-execute transit, ALU/cache latencies); even
/// a memory miss with a TLB walk stays well inside 256 cycles, so the
/// overflow heap only sees fault-injected latency spikes and pathological
/// configurations.
const WHEEL_HORIZON: u64 = 256;

/// Reusable per-stage working buffers. Every stage that needs a scratch
/// list takes the buffer out (`std::mem::take`), uses it, and puts it
/// back, so after warm-up `step_cycle` runs without heap allocation: the
/// buffers keep their high-water capacity across cycles.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Per-thread "cannot make further progress this cycle" flags, shared
    /// by the rename / insert / retire round-robin loops.
    blocked: Vec<bool>,
    /// do_issue: per-cluster oldest-ready selection.
    picks: Vec<Option<(u64, InstId)>>,
    /// Events drained from `exec_events` this cycle.
    exec_due: Vec<Due<(InstId, u32)>>,
    /// do_execute: still-valid events ordered by age (`seq`).
    exec_list: Vec<(u64, InstId, u32)>,
    /// Events drained from `complete_events` this cycle.
    complete_due: Vec<Due<(InstId, u32)>>,
    /// do_complete: still-valid completions ordered by age.
    due: Vec<(u64, InstId, u32, u64)>,
    /// Events drained from `wakeup_events` this cycle.
    wakeup_due: Vec<Due<(InstId, u32, u64)>>,
    /// Load-shadow kill / trap recovery victims.
    to_replay: Vec<InstId>,
    /// squash_after: not-yet-renamed front-end victims.
    dropped: Vec<InstId>,
    /// do_writeback: values leaving the forwarding buffer this cycle.
    expiring: Vec<(PhysReg, u64)>,
    /// Events drained from `ready_events` this cycle.
    ready_due: Vec<Due<(u32, u32)>>,
    /// on_store_wait_marked: ready-list loads to re-gate.
    gate_sweep: Vec<u32>,
}

/// Per-thread front-end and program-order state. Fields are crate-visible
/// for the invariant auditor (`audit.rs`).
#[derive(Debug)]
pub(crate) struct ThreadState {
    pub(crate) program: Program,
    /// Per-PC static instruction metadata, decoded once at construction
    /// (DESIGN.md §14). The fetch/rename/execute stages index this flat
    /// table instead of re-interrogating `Inst` per dynamic instance.
    pub(crate) code: Predecode,
    pub(crate) fetch_pc: u64,
    /// PC of the next instruction in architectural (retired) order —
    /// `entry` until the first retirement, then the last retired
    /// instruction's `next_pc`.
    pub(crate) arch_pc: u64,
    /// Fetch suspended: a `halt` was fetched, or the PC ran off the image
    /// on a wrong path. Cleared by squash redirects.
    pub(crate) fetch_suspended: bool,
    pub(crate) fetch_stall_until: u64,
    /// Fetched instructions awaiting rename, with the cycle they become
    /// eligible (fetch-stage delay).
    pub(crate) decode_q: VecDeque<(u64, InstId)>,
    /// Renamed instructions travelling the DEC-IQ pipe toward the IQ.
    pub(crate) transit_q: VecDeque<(u64, InstId)>,
    /// Program-order window (renamed, not yet retired).
    pub(crate) rob: VecDeque<InstId>,
    /// In-flight stores in program order.
    pub(crate) store_q: VecDeque<InstId>,
    /// Count of `store_q` entries whose address is still unknown
    /// (`mem_addr` unset). Incremented at rename, decremented when the
    /// store executes, recomputed on squash.
    pub(crate) unknown_stores: usize,
    /// `seq` of the oldest address-unknown store in `store_q`
    /// (`u64::MAX` when `unknown_stores == 0`). A store-wait-predicted
    /// load must wait exactly while this is older than the load — the
    /// O(1) replacement for scanning `store_q` per readiness check.
    pub(crate) oldest_unknown_seq: u64,
    pub(crate) ras: ReturnAddressStack,
    /// Sequence number of an un-retired memory barrier stalling rename.
    pub(crate) mb_stall_seq: Option<u64>,
    /// Unresolved conditional branches in flight (checkpoint accounting).
    pub(crate) unresolved_branches: usize,
    /// The thread retired its `halt`.
    pub(crate) done: bool,
    /// CPI-stack attribution for the pipeline refill in progress: the
    /// squash (or barrier) cause plus the global `seq` at the event. Empty
    /// or front-end-phase retire slots charge here until an instruction
    /// younger than the marker retires (refill delivered).
    pub(crate) refill_cause: Option<(u64, CpiComponent)>,
    /// Verification oracle (enabled by [`Machine::enable_verification`]).
    pub(crate) oracle: Option<(ArchState, FlatMemory)>,
}

impl ThreadState {
    fn frontend_len(&self) -> usize {
        self.decode_q.len() + self.transit_q.len()
    }

    fn icount(&self) -> usize {
        self.frontend_len() + self.rob.len()
    }
}

/// The simulated machine: construct with [`Machine::new`] (or the
/// panicking [`Machine::must`]), drive with [`Machine::run`], read results
/// from [`Machine::stats`]. Fields are crate-visible for the invariant
/// auditor (`audit.rs`).
pub struct Machine {
    pub(crate) cfg: PipelineConfig,
    pub(crate) cycle: u64,
    pub(crate) seq: u64,
    pub(crate) slab: InstSlab,
    pub(crate) iq: IssueQueue,
    pub(crate) threads: Vec<ThreadState>,
    // Register machinery.
    pub(crate) freelist: FreeList,
    pub(crate) physfile: PhysRegFile,
    pub(crate) rename: Vec<RenameMap>,
    pub(crate) fwd: ForwardingBuffer,
    pub(crate) rpft: Rpft,
    pub(crate) crcs: Vec<ClusterRegCache>,
    pub(crate) itables: Vec<InsertionTable>,
    /// Per physical register: earliest cycle a consumer may *issue* so its
    /// operand is present at execute. `u64::MAX` = producer unscheduled.
    pub(crate) ready_at: Vec<u64>,
    /// Per physical register: cycle the value was actually produced
    /// (`u64::MAX` while in flight).
    pub(crate) avail_cycle: Vec<u64>,
    /// Per physical register: bumped whenever `ready_at` is rewritten, so
    /// consumers blocked on a failed wake-up know when to retry.
    pub(crate) ready_version: Vec<u32>,
    // Memory.
    pub(crate) hier: MemHierarchy,
    pub(crate) data_mem: FlatMemory,
    // Prediction.
    pub(crate) pred: Box<dyn DirectionPredictor>,
    pub(crate) btb: Btb,
    pub(crate) line_pred: LinePredictor,
    pub(crate) store_wait: StoreWaitTable,
    // Event wheels: cycle -> [(inst, issue-stamp)] in insertion order.
    pub(crate) exec_events: TimingWheel<(InstId, u32)>,
    pub(crate) complete_events: TimingWheel<(InstId, u32)>,
    /// Delayed wake-up corrections: the IQ learns a load missed only after
    /// the load-resolution loop's feedback delay. (cycle -> [(inst, stamp,
    /// corrected ready_at)]).
    pub(crate) wakeup_events: TimingWheel<(InstId, u32, u64)>,
    /// Readiness timers for the incremental scheduler: when a wake-up
    /// names a finite future cycle for a waiting entry, a `(slot, epoch)`
    /// record fires here at that cycle and the entry is re-evaluated.
    /// Spurious fires (withdrawn or superseded wake-ups) are harmless.
    pub(crate) ready_events: TimingWheel<(u32, u32)>,
    /// Per physical register: `(slot, epoch)` records of waiting IQ
    /// entries whose readiness may change when this register's wake-up
    /// schedule changes. Registered at the start of each waiting tenure
    /// for every source register that is not yet *settled* (produced and
    /// past its wake-up cycle); drained by [`Machine::set_ready_at`].
    pub(crate) preg_consumers: Vec<Vec<(u32, u32)>>,
    /// Per thread: `(slot, epoch)` records of waiting loads parked behind
    /// the store-wait predictor (an older address-unknown store exists).
    /// Drained when a store's address resolves or the queue is squashed.
    pub(crate) gated_loads: Vec<Vec<(u32, u32)>>,
    /// Event-driven scheduling + quiescence skip enabled (default). When
    /// off, `do_issue` falls back to the per-cycle waiting-list walk and
    /// `run` steps every cycle — the reference the differential suite
    /// compares against.
    pub(crate) event_driven: bool,
    /// Did the just-stepped cycle visibly do anything (retire, event
    /// fire, issue, insert, rename, fetch access, write-back, slot
    /// release)? Cleared at the top of every step. Purely a gate on the
    /// quiescence *check*: a false negative costs one evaluation of
    /// [`Machine::quiescent_until`], a false positive delays a skip by
    /// one stepped cycle — neither affects simulated results.
    pub(crate) progressed: bool,
    /// Wall-clock per-stage accumulation, allocated only when the
    /// process-global profiling switch was on at construction.
    pub(crate) profile: Option<Box<crate::profile::StageReport>>,
    pub(crate) frontend_stall_until: u64,
    /// Per-cluster count of slotted instructions still in DEC-IQ transit
    /// (the IQ itself tracks inserted ones). Slotting balances on the sum,
    /// otherwise whole fetch groups clump onto one cluster for the length
    /// of the transit pipe.
    pub(crate) cluster_pressure: Vec<u32>,
    pub(crate) stats: SimStats,
    /// Captured retire stream (for equivalence tests), if enabled.
    pub(crate) retire_capture: Option<Vec<(usize, Retired)>>,
    /// Kanata pipeline tracer, if enabled.
    pub(crate) tracer: Option<PipelineTracer>,
    /// Armed fault injector (from `cfg.faults`), if any.
    pub(crate) injector: Option<FaultInjector>,
    /// Reusable per-stage working buffers (see [`Scratch`]).
    pub(crate) scratch: Scratch,
}

impl Machine {
    /// Build a machine running `programs` (one per hardware thread).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is invalid
    /// ([`PipelineConfig::validate`]) and [`SimError::ProgramCount`] if the
    /// program count does not match `cfg.threads`.
    pub fn new(cfg: PipelineConfig, programs: Vec<Program>) -> Result<Machine, SimError> {
        cfg.validate()?;
        if programs.len() != cfg.threads {
            return Err(SimError::ProgramCount {
                expected: cfg.threads,
                got: programs.len(),
            });
        }

        let mut freelist = FreeList::new(cfg.phys_regs);
        let rename: Vec<RenameMap> = (0..cfg.threads)
            .map(|_| RenameMap::new(&mut freelist))
            .collect();
        let mut data_mem = FlatMemory::new();
        for p in &programs {
            data_mem.load_init_data(p);
        }
        let (crcs, itables) = match cfg.scheme {
            RegisterScheme::Monolithic => (Vec::new(), Vec::new()),
            RegisterScheme::Dra {
                crc_entries,
                crc_policy,
            } => (
                (0..cfg.clusters)
                    .map(|_| ClusterRegCache::with_policy(crc_entries, crc_policy))
                    .collect(),
                (0..cfg.clusters)
                    .map(|_| InsertionTable::new(cfg.phys_regs))
                    .collect(),
            ),
        };
        let threads = programs
            .into_iter()
            .map(|program| ThreadState {
                fetch_pc: program.entry,
                arch_pc: program.entry,
                code: Predecode::of(&program),
                program,
                fetch_suspended: false,
                fetch_stall_until: 0,
                decode_q: VecDeque::new(),
                transit_q: VecDeque::new(),
                rob: VecDeque::new(),
                store_q: VecDeque::new(),
                unknown_stores: 0,
                oldest_unknown_seq: u64::MAX,
                ras: ReturnAddressStack::new(cfg.ras_entries),
                mb_stall_seq: None,
                unresolved_branches: 0,
                done: false,
                refill_cause: None,
                oracle: None,
            })
            .collect();

        Ok(Machine {
            iq: IssueQueue::new(cfg.iq_entries, cfg.clusters),
            physfile: PhysRegFile::new(cfg.phys_regs),
            fwd: ForwardingBuffer::with_regs(cfg.fwd_window, cfg.phys_regs),
            rpft: Rpft::new(cfg.phys_regs),
            ready_at: vec![0; cfg.phys_regs],
            avail_cycle: vec![0; cfg.phys_regs],
            ready_version: vec![0; cfg.phys_regs],
            hier: MemHierarchy::new(cfg.mem),
            pred: build_predictor(cfg.predictor),
            btb: Btb::new(cfg.btb_entries),
            line_pred: LinePredictor::new(cfg.line_entries, cfg.width as u64),
            store_wait: StoreWaitTable::new(cfg.store_wait_entries),
            stats: SimStats::new(cfg.threads),
            crcs,
            itables,
            threads,
            rename,
            freelist,
            data_mem,
            cycle: 0,
            seq: 0,
            slab: InstSlab::new(),
            exec_events: TimingWheel::new(WHEEL_HORIZON),
            complete_events: TimingWheel::new(WHEEL_HORIZON),
            wakeup_events: TimingWheel::new(WHEEL_HORIZON),
            ready_events: TimingWheel::new(WHEEL_HORIZON),
            preg_consumers: vec![Vec::new(); cfg.phys_regs],
            gated_loads: vec![Vec::new(); cfg.threads],
            // Default on; `LOOSELOOPS_NAIVE=1` forces the reference
            // per-cycle engine process-wide (an A/B escape hatch — the
            // two engines are cycle-exact by construction and by the
            // differential suite, so this only trades speed).
            event_driven: std::env::var_os("LOOSELOOPS_NAIVE").is_none(),
            progressed: true,
            profile: crate::profile::enabled().then(Box::default),
            scratch: Scratch::default(),
            frontend_stall_until: 0,
            cluster_pressure: vec![0; cfg.clusters],
            retire_capture: None,
            tracer: None,
            injector: cfg.faults.map(FaultInjector::new),
            cfg,
        })
    }

    /// [`Machine::new`] for infallible contexts (benches, examples).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or mismatched program count.
    pub fn must(cfg: PipelineConfig, programs: Vec<Program>) -> Machine {
        Machine::new(cfg, programs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The machine's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Current cycle.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Architectural data memory (retired stores + initial images).
    pub fn data_mem(&mut self) -> &mut FlatMemory {
        &mut self.data_mem
    }

    /// Architectural value of register `r` in `thread` (via the retired
    /// rename mapping — only meaningful once the pipeline has drained, e.g.
    /// after the thread halts).
    pub fn arch_reg(&mut self, thread: usize, r: looseloops_isa::Reg) -> u64 {
        if r.is_zero() {
            return 0;
        }
        let p = self.rename[thread].lookup(r);
        self.physfile.read(p)
    }

    /// Snapshot of `thread`'s full architectural state — all 64 registers
    /// (via [`Machine::arch_reg`]), the PC of the next unretired
    /// instruction, and the halt flag — as an interpreter [`ArchState`],
    /// so it can be [`ArchState::diff`]ed against the functional model's.
    /// Like `arch_reg`, only meaningful once the pipeline has drained.
    pub fn arch_state(&mut self, thread: usize) -> ArchState {
        let mut st = ArchState::new(&self.threads[thread].program);
        for idx in 0..looseloops_isa::reg::NUM_ARCH_REGS {
            let r = looseloops_isa::Reg::from_index(idx);
            let v = self.arch_reg(thread, r);
            st.write_reg(r, v);
        }
        st.set_pc(self.threads[thread].arch_pc);
        st.set_halted(self.threads[thread].done);
        st
    }

    /// Scheduled-vs-fired fault accounting (`None` when `cfg.faults` is
    /// unset). Storm tests assert on this so injections cannot be dropped
    /// silently.
    pub fn fault_summary(&self) -> Option<crate::faults::FaultSummary> {
        self.injector.as_ref().map(FaultInjector::summary)
    }

    /// Check every retired instruction against the functional interpreter,
    /// starting from the machine's *current* architectural state — so this
    /// works both on a fresh machine and immediately after a checkpoint
    /// restore (call it before running, or after the pipeline has fully
    /// drained).
    ///
    /// # Panics
    ///
    /// Any later `run` panics on the first divergence. Only valid for
    /// workloads whose threads touch disjoint memory (all bundled
    /// workloads do): each thread's oracle gets its own clone of the
    /// shared data memory.
    pub fn enable_verification(&mut self) {
        let states: Vec<ArchState> = (0..self.threads.len())
            .map(|t| self.arch_state(t))
            .collect();
        for (t, st) in states.into_iter().enumerate() {
            let mem = self.data_mem.clone();
            self.threads[t].oracle = Some((st, mem));
        }
    }

    /// Restore a thread's architectural state (all 64 registers, the PC of
    /// the next instruction, and the halt flag) from a checkpoint. The
    /// values land in the physical register file through the committed
    /// rename mapping, so a subsequent [`Machine::run`] picks up exactly
    /// where the functional fast-forward left off.
    ///
    /// # Errors
    ///
    /// [`SimError::FastForward`] if any cycle has already run (restore is
    /// only sound on a fresh machine) or `regs` has the wrong length.
    pub fn restore_thread_state(
        &mut self,
        thread: usize,
        regs: &[u64],
        pc: u64,
        halted: bool,
    ) -> Result<(), SimError> {
        if self.cycle != 0 || self.seq != 0 {
            return Err(SimError::FastForward(
                "thread restore requires a fresh machine (cycle 0)".into(),
            ));
        }
        if regs.len() != usize::from(looseloops_isa::reg::NUM_ARCH_REGS) {
            return Err(SimError::FastForward(format!(
                "checkpoint has {} registers, machine has {}",
                regs.len(),
                looseloops_isa::reg::NUM_ARCH_REGS
            )));
        }
        for (idx, &v) in regs.iter().enumerate() {
            let r = looseloops_isa::Reg::from_index(idx as u8);
            if r.is_zero() {
                continue;
            }
            let p = self.rename[thread].lookup(r);
            self.physfile.write(p, v);
        }
        let th = &mut self.threads[thread];
        th.fetch_pc = pc;
        th.arch_pc = pc;
        th.done = halted;
        th.fetch_suspended = halted;
        Ok(())
    }

    /// Replace the shared functional data memory wholesale (checkpoint
    /// restore; pair with [`Machine::restore_thread_state`]).
    pub fn replace_data_mem(&mut self, mem: FlatMemory) {
        self.data_mem = mem;
    }

    /// Install cache/TLB warm state captured during functional fast-forward.
    ///
    /// # Errors
    ///
    /// [`SimError::FastForward`] if the snapshot does not match this
    /// machine's hierarchy geometry.
    pub fn install_warm_hierarchy(
        &mut self,
        warm: &looseloops_mem::HierarchyWarmState,
    ) -> Result<(), SimError> {
        self.hier.import_warm(warm).map_err(SimError::FastForward)
    }

    /// Install direction-predictor warm state (the word vector from
    /// `DirectionPredictor::export_state` of a same-kind predictor).
    ///
    /// # Errors
    ///
    /// [`SimError::FastForward`] on a geometry/kind mismatch.
    pub fn install_warm_predictor(&mut self, words: &[u64]) -> Result<(), SimError> {
        self.pred.import_state(words).map_err(SimError::FastForward)
    }

    /// Install BTB warm state (from `Btb::export_state` of a same-size BTB).
    ///
    /// # Errors
    ///
    /// [`SimError::FastForward`] on a size mismatch.
    pub fn install_warm_btb(&mut self, entries: &[(u64, u64)]) -> Result<(), SimError> {
        self.btb
            .import_state(entries)
            .map_err(SimError::FastForward)
    }

    /// Start recording a Kanata pipeline trace (viewable in Konata-style
    /// pipeline viewers). Costly in memory for long runs; intended for
    /// windows of up to a few hundred thousand cycles.
    pub fn enable_trace(&mut self) {
        self.tracer = Some(PipelineTracer::new());
    }

    /// Drain the Kanata trace recorded since `enable_trace` (empty string
    /// if tracing was never enabled).
    pub fn take_trace(&mut self) -> String {
        self.tracer
            .as_mut()
            .map(PipelineTracer::take)
            .unwrap_or_default()
    }

    /// Record `(thread, Retired)` for every retirement (equivalence tests).
    pub fn enable_retire_capture(&mut self) {
        self.retire_capture = Some(Vec::new());
    }

    /// Drain and return the captured retire stream. Capture stays enabled;
    /// the drained buffer's allocation is handed to the caller and the
    /// capture restarts empty.
    pub fn take_retires(&mut self) -> Vec<(usize, Retired)> {
        self.retire_capture
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Number of dynamic instructions currently tracked (fetched, not yet
    /// retired or squashed).
    pub fn in_flight(&self) -> usize {
        self.slab.live()
    }

    /// Free physical registers (diagnostics: after a full drain this must
    /// equal `phys_regs - 64 * threads` or registers leaked).
    pub fn free_phys_regs(&self) -> usize {
        self.freelist.available()
    }

    /// All threads have retired their `halt`.
    pub fn is_done(&self) -> bool {
        self.threads.iter().all(|t| t.done)
    }

    /// Reset statistics counters (after warm-up) without touching
    /// micro-architectural state.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::new(self.cfg.threads);
    }

    /// Run until every thread halts, `max_retired` instructions retire
    /// (total), or `max_cycles` elapse — whichever is first. Returns the
    /// statistics.
    ///
    /// When `cfg.audit` is set, the invariant auditor runs after every
    /// cycle; when `cfg.watchdog_window` is non-zero, a forward-progress
    /// watchdog monitors retirement.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if no instruction retires for a whole
    /// watchdog window while un-halted threads still have work, and
    /// [`SimError::Invariant`] if the auditor finds a broken structural
    /// invariant. Both carry enough state to diagnose the wedge; the
    /// machine is left intact for inspection.
    pub fn run(&mut self, max_retired: u64, max_cycles: u64) -> Result<&SimStats, SimError> {
        let target = self.stats.total_retired().saturating_add(max_retired);
        let last_cycle = self.cycle.saturating_add(max_cycles);
        let window = self.cfg.watchdog_window;
        // The watchdog anchors at run start so a machine that never retires
        // anything still trips it.
        let mut last_retired = self.stats.total_retired();
        let mut last_progress_cycle = self.cycle;
        // Quiescence skip is only sound when the auditor is off: the
        // auditor must observe (and count) every cycle.
        let may_skip = self.event_driven && !self.cfg.audit;
        while !self.is_done() && self.stats.total_retired() < target && self.cycle < last_cycle {
            self.step_cycle();
            if self.cfg.audit {
                if let Err(v) = self.audit() {
                    self.finalize_stats();
                    return Err(v.into());
                }
            }
            let retired = self.stats.total_retired();
            if retired != last_retired {
                last_retired = retired;
                last_progress_cycle = self.cycle;
            } else if window > 0 && self.cycle - last_progress_cycle >= window {
                self.stats.deadlocks_detected += 1;
                self.finalize_stats();
                return Err(DeadlockError {
                    cycle: self.cycle,
                    window,
                    last_retire_cycle: last_progress_cycle,
                    snapshot: self.snapshot(),
                }
                .into());
            }
            // Only skip when the loop will actually continue — a skip
            // after the final retirement (or budget exhaustion) would
            // charge cycles the naive loop never steps.
            if may_skip
                && !self.progressed
                && !self.is_done()
                && self.stats.total_retired() < target
                && self.cycle < last_cycle
            {
                if let Some(t) = self.quiescent_until(last_cycle, window, last_progress_cycle) {
                    self.skip_to(t);
                }
            }
        }
        self.finalize_stats();
        Ok(&self.stats)
    }

    /// Point-in-time occupancy of every pipeline structure (the payload of
    /// a [`DeadlockError`], also useful for ad-hoc diagnostics).
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            cycle: self.cycle,
            iq_len: self.iq.len(),
            iq_capacity: self.iq.capacity(),
            iq_states: self.iq.state_breakdown(),
            free_phys_regs: self.freelist.available(),
            phys_regs: self.cfg.phys_regs,
            in_flight: self.total_in_flight(),
            max_in_flight: self.cfg.max_in_flight,
            frontend_stall_until: self.frontend_stall_until,
            pending_events: (
                self.exec_events.len(),
                self.complete_events.len(),
                self.wakeup_events.len(),
            ),
            threads: self
                .threads
                .iter()
                .map(|th| ThreadSnapshot {
                    done: th.done,
                    fetch_pc: th.fetch_pc,
                    fetch_suspended: th.fetch_suspended,
                    fetch_stall_until: th.fetch_stall_until,
                    decode_q: th.decode_q.len(),
                    transit_q: th.transit_q.len(),
                    rob: th.rob.len(),
                    store_q: th.store_q.len(),
                    unresolved_branches: th.unresolved_branches,
                    mb_stalled: th.mb_stall_seq.is_some(),
                    oldest: th.rob.front().and_then(|&id| self.slab.get(id)).map(|di| {
                        let phase = match di.phase {
                            InstPhase::FrontEnd => "FrontEnd",
                            InstPhase::InIq => "InIq",
                            InstPhase::Issued => "Issued",
                            InstPhase::Complete => "Complete",
                            InstPhase::Retired => "Retired",
                        };
                        (di.seq, di.pc, phase)
                    }),
                })
                .collect(),
        }
    }

    /// Advance exactly one cycle.
    pub fn step_cycle(&mut self) {
        if self.profile.is_some() {
            self.step_cycle_profiled();
        } else {
            self.step_cycle_plain();
        }
    }

    fn step_cycle_plain(&mut self) {
        self.progressed = false;
        let now = self.cycle;
        let retired = self.do_retire(now);
        self.progressed |= retired > 0;
        // Attribution reads the machine exactly as retire left it, before
        // later (earlier-in-pipe) stages mutate phases for the next cycle.
        self.attribute_cycle(now, retired);
        self.do_complete(now);
        // Write-back runs before execute: a value leaving the forwarding
        // buffer this cycle is already in the register file / CRCs when
        // this cycle's executions read operands (the hardware's write-back
        // bypass wire).
        self.do_writeback(now);
        self.do_execute(now);
        self.do_wakeups(now);
        self.do_issue(now);
        self.do_insert(now);
        self.do_rename(now);
        self.do_fetch(now);
        self.progressed |= self.iq.next_release().is_some_and(|r| r <= now);
        self.iq.release_confirmed(now);
        self.iq.sample_occupancy();
        if now < self.frontend_stall_until {
            self.stats.operand_miss_stall_cycles += 1;
        }
        self.stats.cycles += 1;
        self.cycle += 1;
    }

    /// `step_cycle_plain` with a wall-clock timestamp around every stage.
    /// Kept as a separate body so the hot path pays nothing for the
    /// instrumentation when profiling is off.
    fn step_cycle_profiled(&mut self) {
        use std::time::Instant;
        let mut ns = [0u64; crate::profile::STAGE_COUNT];
        macro_rules! timed {
            ($idx:expr, $body:expr) => {{
                let t = Instant::now();
                let r = $body;
                ns[$idx] += t.elapsed().as_nanos() as u64;
                r
            }};
        }
        self.progressed = false;
        let now = self.cycle;
        let retired = timed!(0, self.do_retire(now));
        self.progressed |= retired > 0;
        timed!(1, self.attribute_cycle(now, retired));
        timed!(2, self.do_complete(now));
        timed!(3, self.do_writeback(now));
        timed!(4, self.do_execute(now));
        timed!(5, self.do_wakeups(now));
        timed!(6, self.do_issue(now));
        timed!(7, self.do_insert(now));
        timed!(8, self.do_rename(now));
        timed!(9, self.do_fetch(now));
        timed!(10, {
            self.progressed |= self.iq.next_release().is_some_and(|r| r <= now);
            self.iq.release_confirmed(now);
            self.iq.sample_occupancy();
            if now < self.frontend_stall_until {
                self.stats.operand_miss_stall_cycles += 1;
            }
            self.stats.cycles += 1;
            self.cycle += 1;
        });
        let p = self.profile.as_mut().expect("profiling enabled");
        for (total, stage) in p.stage_ns.iter_mut().zip(&ns) {
            *total += stage;
        }
        p.stepped_cycles += 1;
    }

    fn finalize_stats(&mut self) {
        let (mean, post, peak) = self.iq.occupancy_stats();
        self.stats.iq_occupancy_mean = mean;
        self.stats.iq_post_issue_mean = post;
        self.stats.iq_peak = peak;
        self.stats.mem = self.hier.stats();
        self.stats.line_pred = self.line_pred.stats();
        if let RegisterScheme::Dra { .. } = self.cfg.scheme {
            self.stats.insertion_saturations =
                self.itables.iter().map(|t| t.saturation_events()).sum();
        }
        if let Some(inj) = &self.injector {
            self.stats.faults_injected = inj.injected();
            self.stats.faults_by_kind = inj.by_kind();
        }
        // Flush local profiling accumulation into the process-global report
        // and reset, so repeated `run` calls never double-count.
        if let Some(p) = &mut self.profile {
            crate::profile::merge(p);
            **p = crate::profile::StageReport::default();
        }
    }

    /// Rewrite a register's wake-up schedule and bump its version so
    /// blocked consumers re-evaluate.
    #[inline]
    fn set_ready_at(&mut self, p: PhysReg, v: u64) {
        self.ready_at[p.index()] = v;
        self.ready_version[p.index()] = self.ready_version[p.index()].wrapping_add(1);
        self.drain_consumers(p);
    }

    /// Enable or disable the event-driven engine (incremental ready-list
    /// selection + quiescence skip). On by default; the differential suite
    /// turns it off to produce the naive per-cycle-stepping reference.
    pub fn set_event_driven(&mut self, on: bool) {
        self.event_driven = on;
    }

    // ----------------------------------------------- incremental scheduling
    //
    // The incremental structures (per-cluster ready lists, per-preg
    // consumer lists, readiness timers, store-wait gate lists) are
    // maintained in BOTH engine modes — only issue *selection* and the
    // quiescence skip switch on `event_driven` — so the auditor can check
    // the ready-list invariants unconditionally and the naive mode stays a
    // true reference for the shared bookkeeping.
    //
    // A physical register is *settled* once it is produced and past its
    // wake-up cycle (`avail_cycle != MAX && ready_at <= now`). A settled
    // register's readiness can never regress: withdrawal (replay) requires
    // an un-produced value, and post-completion rewrites only move the
    // wake-up earlier. Consumer-list registration and record retention key
    // off exactly this predicate.

    /// Store-wait gate for waiting entry `e`: a predicted-conflicting load
    /// must hold while any older same-thread store's address is unknown.
    pub(crate) fn entry_gated(&self, e: &IqEntry) -> bool {
        let di = self.slab.expect(e.id);
        di.class == Class::Load
            && self.store_wait.must_wait(di.pc)
            && self.threads[e.thread].oldest_unknown_seq < di.seq
    }

    /// Register the waiting tenure in `slot` on the consumer list of every
    /// source register that could still change its readiness (see the
    /// *settled* rule above). Called exactly once per tenure, right after
    /// the entry enters `Waiting` (insert or replay).
    fn register_entry(&mut self, slot: u32, now: u64) {
        let Some(e) = self.iq.waiting_slot(slot) else {
            return;
        };
        let id = e.id;
        let epoch = self.iq.epoch_of(slot);
        let srcs = self.slab.expect(id).srcs;
        let mut first: Option<PhysReg> = None;
        for src in srcs.iter().flatten() {
            if src.payload_valid {
                continue;
            }
            let p = src.phys;
            if first == Some(p) {
                continue; // both sources name the same register
            }
            if first.is_none() {
                first = Some(p);
            }
            if self.avail_cycle[p.index()] == u64::MAX || self.ready_at[p.index()] > now {
                self.preg_consumers[p.index()].push((slot, epoch));
            }
        }
    }

    /// Re-evaluate the waiting entry in `slot` against current wake-up and
    /// store-wait state, moving it between the cluster ready list, the
    /// store-wait gate list, and the readiness timer wheel. Idempotent —
    /// spurious calls (stale timers, duplicate consumer records) are
    /// harmless. The caller must have validated that `slot` is `Waiting`.
    fn reeval_entry(&mut self, slot: u32, now: u64) {
        let e = *self
            .iq
            .waiting_slot(slot)
            .expect("reeval_entry: slot not waiting");
        // One slab lookup serves both the store-wait gate check (the
        // in-place `entry_gated`) and the earliest-issue-cycle computation
        // — the cycle-comparison mirror of `src_ready`: `u64::MAX` when
        // unbounded (producer unscheduled, or a source blocked on a
        // wake-up version that has not been rewritten).
        let di = self.slab.expect(e.id);
        let gated = di.class == Class::Load
            && self.store_wait.must_wait(di.pc)
            && self.threads[e.thread].oldest_unknown_seq < di.seq;
        let mut r = 0u64;
        if !gated {
            for src in di.srcs.iter().flatten() {
                let t = if src.payload_valid {
                    src.ready_at
                } else if src.blocked_version == Some(self.ready_version[src.phys.index()]) {
                    u64::MAX
                } else {
                    self.ready_at[src.phys.index()]
                };
                r = r.max(t);
            }
        }
        if gated {
            self.iq.ready_withdraw(slot);
            if !self.iq.is_gated(slot) {
                self.iq.set_gated(slot, true);
                self.gated_loads[e.thread].push((slot, self.iq.epoch_of(slot)));
            }
            return;
        }
        self.iq.set_gated(slot, false);
        if r <= now {
            self.iq.ready_push(slot);
        } else {
            self.iq.ready_withdraw(slot);
            if r != u64::MAX {
                self.ready_events
                    .schedule(r, (slot, self.iq.epoch_of(slot)));
            }
        }
    }

    /// Re-evaluate every consumer registered on `p` after its wake-up
    /// schedule changed. Records survive while `p` is still unsettled (a
    /// future wake-up may move again, or be withdrawn); once `p` settles
    /// the records are spent and the list empties.
    fn drain_consumers(&mut self, p: PhysReg) {
        if self.preg_consumers[p.index()].is_empty() {
            return;
        }
        let mut list = std::mem::take(&mut self.preg_consumers[p.index()]);
        let now = self.cycle;
        let keep = self.avail_cycle[p.index()] == u64::MAX || self.ready_at[p.index()] > now;
        let mut i = 0;
        while i < list.len() {
            let (slot, epoch) = list[i];
            if self.iq.waiting_at_epoch(slot, epoch).is_none() {
                list.swap_remove(i);
                continue;
            }
            self.reeval_entry(slot, now);
            if keep {
                i += 1;
            } else {
                list.swap_remove(i);
            }
        }
        // `reeval_entry` never touches consumer lists, but merge rather
        // than overwrite in case that ever changes.
        let mut stray = std::mem::replace(&mut self.preg_consumers[p.index()], list);
        self.preg_consumers[p.index()].append(&mut stray);
    }

    /// Re-evaluate thread `t`'s store-wait-gated loads after the set of
    /// address-unknown stores shrank (a store executed, or a squash).
    fn drain_gated(&mut self, t: usize) {
        if self.gated_loads[t].is_empty() {
            return;
        }
        let mut list = std::mem::take(&mut self.gated_loads[t]);
        let now = self.cycle;
        let mut i = 0;
        while i < list.len() {
            let (slot, epoch) = list[i];
            if self.iq.waiting_at_epoch(slot, epoch).is_none() || !self.iq.is_gated(slot) {
                list.swap_remove(i);
                continue;
            }
            self.reeval_entry(slot, now);
            if self.iq.is_gated(slot) {
                i += 1; // still parked — keep the record
            } else {
                list.swap_remove(i);
            }
        }
        // A reeval above cannot have re-gated into the (taken) field list,
        // but merge rather than overwrite for the same reason as
        // `drain_consumers`.
        let mut stray = std::mem::replace(&mut self.gated_loads[t], list);
        self.gated_loads[t].append(&mut stray);
    }

    /// A store-wait bit was just set for `pc` (memory-order violation):
    /// ready-list loads of that PC with an older address-unknown store
    /// must come back out and park on the gate list. Runs in `do_execute`,
    /// so the gate is visible to this cycle's `do_issue` — exactly when
    /// the per-cycle evaluation would first see it.
    fn on_store_wait_marked(&mut self, pc: u64) {
        let mut sweep = std::mem::take(&mut self.scratch.gate_sweep);
        sweep.clear();
        for cluster in 0..self.cfg.clusters {
            for (slot, e) in self.iq.ready_iter(cluster) {
                let di = self.slab.expect(e.id);
                if di.pc == pc
                    && di.class == Class::Load
                    && self.threads[e.thread].oldest_unknown_seq < di.seq
                {
                    sweep.push(slot);
                }
            }
        }
        let now = self.cycle;
        for &slot in &sweep {
            self.reeval_entry(slot, now);
        }
        self.scratch.gate_sweep = sweep;
    }

    /// Recompute `unknown_stores` / `oldest_unknown_seq` for thread `t` by
    /// scanning its store queue (squash recovery; the steady-state updates
    /// are O(1) increments at rename and decrements at store execution).
    fn recount_unknown_stores(&mut self, t: usize) {
        let mut count = 0usize;
        let mut oldest = u64::MAX;
        for &sid in &self.threads[t].store_q {
            let sdi = self.slab.expect(sid);
            if sdi.mem_addr.is_none() {
                count += 1;
                oldest = oldest.min(sdi.seq);
            }
        }
        let th = &mut self.threads[t];
        th.unknown_stores = count;
        th.oldest_unknown_seq = oldest;
    }

    // ------------------------------------------------------ quiescence skip

    /// Mirror of `rename_one`'s failure paths, without side effects: would
    /// renaming `id` on thread `t` stall right now?
    fn rename_would_block(&self, t: usize, id: InstId) -> bool {
        let di = self.slab.expect(id);
        if di.class == Class::CondBranch {
            if let Some(limit) = self.cfg.branch_checkpoints {
                if self.threads[t].unresolved_branches >= limit {
                    return true;
                }
            }
        }
        let info = self.threads[t]
            .code
            .info(di.pc)
            .expect("fetched implies predecoded");
        info.dest.is_some() && self.freelist.available() == 0
    }

    /// When no stage can make progress at the current cycle, return the
    /// earliest future cycle at which anything could change — capped by
    /// the run budget and the watchdog — so the run loop may jump there.
    /// Returns `None` when some stage can still act now (or the jump would
    /// be empty). Soundness: every condition a stage acts on is either
    /// checked "ripe now" here (→ `None`) or contributes its ripening
    /// cycle to the target, so every skipped cycle is provably a cycle the
    /// naive loop would have stepped through without changing anything but
    /// the per-cycle counters (batch-charged by `skip_to`).
    fn quiescent_until(
        &self,
        last_cycle: u64,
        window: u64,
        last_progress_cycle: u64,
    ) -> Option<u64> {
        let now = self.cycle;
        // Issue: anything on a ready list issues next cycle.
        if self.iq.ready_total() > 0 {
            return None;
        }
        // Pending events on any wheel.
        let wheel_dues = [
            self.exec_events.next_due(),
            self.complete_events.next_due(),
            self.wakeup_events.next_due(),
            self.ready_events.next_due(),
        ];
        if wheel_dues.iter().any(|d| d.is_some_and(|d| d <= now)) {
            return None;
        }
        // Write-back: a forwarding-buffer value expiring now must drain.
        let expiry = self.fwd.next_expiry(now);
        if expiry == Some(now) {
            return None;
        }
        // IQ slot release of a confirmed entry.
        let release = self.iq.next_release();
        if release.is_some_and(|r| r <= now) {
            return None;
        }
        // Retire: a completed ROB head retires next cycle.
        for th in &self.threads {
            if th.done {
                continue;
            }
            if let Some(&id) = th.rob.front() {
                if self.slab.expect(id).phase == InstPhase::Complete {
                    return None;
                }
            }
        }
        let mut target = last_cycle;
        let fsu = self.frontend_stall_until;
        if now < fsu {
            // Fetch/rename/insert are all held by the operand-miss
            // recovery stall; they can next act when it lifts.
            target = target.min(fsu);
        } else {
            let decode_cap = (self.cfg.fetch_stages as usize + 2) * self.cfg.width;
            let transit_cap = (self.cfg.dec_iq_stages as usize + 2) * self.cfg.width;
            let in_flight_full = self.total_in_flight() >= self.cfg.max_in_flight;
            for (t, th) in self.threads.iter().enumerate() {
                // Fetch (an eligible thread performs an I-cache access
                // even if it then stalls — never skip over that).
                if !th.done && !th.fetch_suspended && th.decode_q.len() < decode_cap {
                    if th.fetch_stall_until <= now {
                        return None;
                    }
                    target = target.min(th.fetch_stall_until);
                }
                // Insert (do_insert has no done/thread gate: mirror that).
                if let Some(&(ready, _)) = th.transit_q.front() {
                    if ready <= now {
                        if self.iq.free_slots() > 0 {
                            return None;
                        }
                    } else {
                        target = target.min(ready);
                    }
                }
                // Rename.
                if let Some(&(ready, id)) = th.decode_q.front() {
                    if ready <= now {
                        let blocked = th.mb_stall_seq.is_some()
                            || th.transit_q.len() >= transit_cap
                            || in_flight_full
                            || self.rename_would_block(t, id);
                        if !blocked {
                            return None;
                        }
                        // A ripe blocked thread charges one rename stall
                        // per cycle; skip_to batch-charges it.
                    } else {
                        target = target.min(ready);
                    }
                }
            }
        }
        for d in wheel_dues.into_iter().flatten() {
            target = target.min(d);
        }
        if let Some(e) = expiry {
            target = target.min(e);
        }
        if let Some(r) = release {
            target = target.min(r);
        }
        if window > 0 {
            // Step the cycle that trips the watchdog, so a deadlock fires
            // at exactly the same cycle (and with the same snapshot) as
            // under naive stepping.
            target = target.min(last_progress_cycle.saturating_add(window).saturating_sub(1));
        }
        (target > now).then_some(target)
    }

    /// Jump the clock from the current (quiescent) cycle to `target`,
    /// batch-charging everything the naive per-cycle loop would have
    /// recorded over the window: CPI-stack idle attribution (the
    /// classification is constant across a quiescent window — nothing
    /// retires and `now < frontend_stall_until` cannot flip inside it),
    /// per-cycle stall counters, IQ occupancy samples, and the cycle
    /// counter itself.
    fn skip_to(&mut self, target: u64) {
        let now = self.cycle;
        debug_assert!(target > now);
        let k = target - now;
        let width = self.cfg.width as u64;
        let cause = self.classify_lost_cycle(now);
        self.stats.loop_cost.charge_idle(width, k, cause);
        if now < self.frontend_stall_until {
            self.stats.operand_miss_stall_cycles += k;
        } else {
            // Every thread with a ripe decode head is provably blocked
            // (quiescent_until returned) and charges one rename stall per
            // skipped cycle, exactly as do_rename would have.
            let ripe = self
                .threads
                .iter()
                .filter(|th| th.decode_q.front().is_some_and(|&(r, _)| r <= now))
                .count() as u64;
            self.stats.rename_stall_cycles += k * ripe;
        }
        self.iq.sample_occupancy_n(k);
        self.stats.cycles += k;
        self.cycle = target;
        if let Some(p) = &mut self.profile {
            p.skips += 1;
            p.skipped_cycles += k;
        }
    }

    /// Process due wake-up corrections (the delayed miss notifications of
    /// the load-resolution loop).
    fn do_wakeups(&mut self, now: u64) {
        // Nothing due: skip the drain entirely (O(1) cached check).
        if self.wakeup_events.next_due().is_none_or(|d| d > now) {
            return;
        }
        let mut list = std::mem::take(&mut self.scratch.wakeup_due);
        self.wakeup_events.drain_due(now, &mut list);
        self.progressed |= !list.is_empty();
        for e in &list {
            let (id, stamp, ready) = e.payload;
            let Some(di) = self.slab.get(id) else {
                continue;
            };
            if di.issue_count != stamp {
                continue;
            }
            if let Some(DestRename { new, .. }) = di.dest {
                let v = ready.min(self.ready_at[new.index()]);
                self.set_ready_at(new, v);
            }
        }
        self.scratch.wakeup_due = list;
    }

    // ----------------------------------------------------------------- fetch

    fn do_fetch(&mut self, now: u64) {
        if now < self.frontend_stall_until {
            return;
        }
        // ICOUNT: fetch from the eligible thread with the fewest in-flight
        // instructions.
        let decode_cap = (self.cfg.fetch_stages as usize + 2) * self.cfg.width;
        let Some(t) = (0..self.threads.len())
            .filter(|&t| {
                let th = &self.threads[t];
                !th.done
                    && !th.fetch_suspended
                    && th.fetch_stall_until <= now
                    && th.decode_q.len() < decode_cap
            })
            .min_by_key(|&t| (self.threads[t].icount(), t))
        else {
            return;
        };

        self.progressed = true;
        let block_start = self.threads[t].fetch_pc;
        // One aligned I-cache access per fetch block.
        let block_addr = Program::inst_addr(block_start) & !63;
        let ic = self.hier.access(AccessKind::InstFetch, block_addr, now);
        if !ic.is_l1_hit() {
            self.threads[t].fetch_stall_until = now + ic.latency as u64;
            return;
        }

        let width = self.cfg.width as u64;
        let block_end = (block_start / width + 1) * width; // stay in the fetch block
        let mut pc = block_start;
        let next_fetch_pc;
        loop {
            let Some(&info) = self.threads[t].code.info(pc) else {
                // Wrong-path runaway: suspend until a squash redirects us.
                self.threads[t].fetch_suspended = true;
                next_fetch_pc = pc;
                break;
            };
            let id = self.alloc_inst(t, pc, &info, now);
            if let Some(tr) = &mut self.tracer {
                let seq = self.slab.expect(id).seq;
                tr.fetch(now, id, seq, t, pc, &info.inst);
            }
            self.stats.fetched += 1;
            let ready = now + self.cfg.fetch_stages as u64;
            self.threads[t].decode_q.push_back((ready, id));

            if info.class == Class::Halt {
                self.threads[t].fetch_suspended = true;
                next_fetch_pc = pc + 1;
                break;
            }
            if info.is_control {
                let (next, taken) = self.predict_control(t, id, pc, &info);
                if taken {
                    next_fetch_pc = next;
                    break;
                }
            }
            pc += 1;
            if pc >= block_end {
                next_fetch_pc = pc;
                break;
            }
        }

        // Next-line predictor: the tight loop. A wrong prediction costs one
        // fetch bubble.
        let predicted = self.line_pred.predict(block_start);
        self.line_pred.train(block_start, next_fetch_pc);
        if predicted != next_fetch_pc {
            self.threads[t].fetch_stall_until = self.threads[t].fetch_stall_until.max(now + 2);
        }
        self.threads[t].fetch_pc = next_fetch_pc;
    }

    /// Predict a control instruction at fetch. Returns (next fetch pc,
    /// redirects-away-from-fall-through).
    fn predict_control(
        &mut self,
        t: usize,
        id: InstId,
        pc: u64,
        info: &StaticInstInfo,
    ) -> (u64, bool) {
        let history = self.pred.snapshot_history();
        let ras_ckpt = self.threads[t].ras.checkpoint_fixed();
        let mut pred_ctx = 0u64;
        let fall = pc + 1;
        let (next, taken) = match info.branch_kind {
            BranchKind::Cond => {
                let (mut dir, ctx) = self.pred.predict_ctx(pc);
                // Fault injection: a flipped direction is just a wrong
                // prediction — resolution squashes and repairs history
                // exactly as for a natural mispredict.
                if let Some(inj) = &mut self.injector {
                    if inj.flip_branch(self.cycle) {
                        dir = !dir;
                    }
                }
                pred_ctx = ctx;
                if dir {
                    ((fall as i64 + info.inst.imm as i64) as u64, true)
                } else {
                    (fall, false)
                }
            }
            // PC-relative target, known from pre-decode bits.
            BranchKind::Br => (((fall as i64) + info.inst.imm as i64) as u64, true),
            BranchKind::Jsr => {
                self.threads[t].ras.push(fall);
                (((fall as i64) + info.inst.imm as i64) as u64, true)
            }
            BranchKind::Ret => (self.threads[t].ras.pop().unwrap_or(fall), true),
            BranchKind::Jmp => (self.btb.lookup(pc).unwrap_or(fall), true),
            BranchKind::None => unreachable!("not a control class"),
        };
        let cold = self.slab.expect_cold_mut(id);
        cold.pred = Some(BranchPrediction {
            taken,
            next_pc: next,
            history,
            ctx: pred_ctx,
        });
        cold.ras_ckpt = Some(ras_ckpt);
        (next, taken)
    }

    fn alloc_inst(&mut self, t: usize, pc: u64, info: &StaticInstInfo, now: u64) -> InstId {
        self.seq += 1;
        self.slab.alloc(self.seq, t, pc, info, now)
    }

    // ---------------------------------------------------------------- rename

    fn do_rename(&mut self, now: u64) {
        if now < self.frontend_stall_until {
            return;
        }
        // Nothing decoded anywhere: skip the round-robin bookkeeping. No
        // stall statistics fire on an empty decode queue, so this early-out
        // is invisible to the simulated results.
        if self.threads.iter().all(|th| th.decode_q.is_empty()) {
            return;
        }
        let transit_cap = (self.cfg.dec_iq_stages as usize + 2) * self.cfg.width;
        let mut budget = self.cfg.width;
        // Every successful rename pushes exactly one ROB entry, so the
        // in-flight count can be carried locally instead of re-summing the
        // per-thread ROB lengths for each candidate.
        let mut in_flight = self.total_in_flight();
        // Round-robin across threads, in per-thread program order.
        let nthreads = self.threads.len();
        let mut blocked = std::mem::take(&mut self.scratch.blocked);
        blocked.clear();
        blocked.resize(nthreads, false);
        #[allow(clippy::needless_range_loop)] // t also indexes self.threads
        'outer: while budget > 0 {
            let mut progress = false;
            for t in 0..nthreads {
                if budget == 0 {
                    break 'outer;
                }
                if blocked[t] {
                    continue;
                }
                let th = &self.threads[t];
                let Some(&(ready, id)) = th.decode_q.front() else {
                    blocked[t] = true;
                    continue;
                };
                if ready > now
                    || th.mb_stall_seq.is_some()
                    || th.transit_q.len() >= transit_cap
                    || in_flight >= self.cfg.max_in_flight
                {
                    if ready <= now {
                        self.stats.rename_stall_cycles += 1;
                    }
                    blocked[t] = true;
                    continue;
                }
                if !self.rename_one(t, id, now) {
                    self.stats.rename_stall_cycles += 1;
                    blocked[t] = true;
                    continue;
                }
                self.threads[t].decode_q.pop_front();
                in_flight += 1;
                budget -= 1;
                progress = true;
                self.progressed = true;
            }
            if !progress {
                break;
            }
        }
        self.scratch.blocked = blocked;
    }

    fn total_in_flight(&self) -> usize {
        // Every renamed, un-retired instruction sits in its thread's ROB
        // (instructions in DEC-IQ transit included), so the ROB lengths ARE
        // the in-flight count.
        self.threads.iter().map(|t| t.rob.len()).sum()
    }

    /// Rename one instruction; returns `false` if it must stall (free-list
    /// exhaustion or no free branch checkpoint).
    fn rename_one(&mut self, t: usize, id: InstId, now: u64) -> bool {
        let pc = self.slab.expect(id).pc;
        // All static facts come from the predecode table — no per-dynamic
        // opcode matches on this path.
        let info = *self.threads[t]
            .code
            .info(pc)
            .expect("fetched implies predecoded");
        let class = info.class;
        if class == Class::CondBranch {
            if let Some(limit) = self.cfg.branch_checkpoints {
                if self.threads[t].unresolved_branches >= limit {
                    return false; // wait for an older branch to resolve
                }
            }
        }
        // Sources must be looked up against the *pre-instruction* map —
        // before the destination rename overwrites a same-register mapping
        // (e.g. `add r2, r2, r1`).
        let mut src_phys: [Option<(looseloops_isa::Reg, PhysReg)>; 2] = [None, None];
        for (slot, arch) in info.srcs.into_iter().enumerate() {
            if let Some(arch) = arch {
                src_phys[slot] = Some((arch, self.rename[t].lookup(arch)));
            }
        }
        let dest = match info.dest {
            Some(arch) => {
                let Some((new, prev)) = self.rename[t].rename_dest(arch, &mut self.freelist) else {
                    return false;
                };
                self.on_allocate_phys(new);
                Some(DestRename { arch, new, prev })
            }
            None => None,
        };

        // Cluster slotting: least-loaded among the clusters whose
        // functional units can execute this class (FP on the first
        // `fp_clusters`, memory on the last `mem_clusters`), counting both
        // IQ occupancy and DEC-IQ transit; ties to the lowest index.
        let eligible: std::ops::Range<usize> = match info.affinity {
            looseloops_isa::ClusterAffinity::Fp => 0..self.cfg.fp_clusters,
            looseloops_isa::ClusterAffinity::Mem => {
                (self.cfg.clusters - self.cfg.mem_clusters)..self.cfg.clusters
            }
            looseloops_isa::ClusterAffinity::Any => 0..self.cfg.clusters,
        };
        // invariant: validate() guarantees fp_clusters and mem_clusters are
        // both in 1..=clusters, so every eligibility range is non-empty.
        let cluster = eligible
            .min_by_key(|&c| (self.iq.cluster_len(c) + self.cluster_pressure[c], c))
            .expect("at least one cluster");

        // Sources.
        let mut srcs: [Option<SrcOperand>; 2] = [None, None];
        for (slot, entry) in src_phys.into_iter().enumerate() {
            let Some((arch, phys)) = entry else { continue };
            let mut payload = 0u64;
            let mut payload_valid = false;
            let mut itable_pending = false;
            if self.cfg.scheme.is_dra() {
                if self.rpft.can_preread(phys) {
                    // Completed operand: pre-read during DEC-IQ.
                    payload = self.physfile.read(phys);
                    payload_valid = true;
                } else {
                    // Not in the register file yet: tell this cluster's
                    // insertion table a consumer is coming.
                    self.itables[cluster].increment(phys);
                    itable_pending = true;
                }
            }
            srcs[slot] = Some(SrcOperand {
                arch,
                phys,
                payload,
                payload_valid,
                ready_at: 0,
                obtained: None,
                avail_cycle: NO_CYCLE,
                itable_pending,
                blocked_version: None,
            });
        }

        if let Some(tr) = &mut self.tracer {
            tr.stage(now, id, "Dc");
        }
        if class == Class::CondBranch {
            self.threads[t].unresolved_branches += 1;
        }
        let di = self.slab.expect_mut(id);
        di.holds_checkpoint = class == Class::CondBranch;
        di.rename_cycle = now;
        di.dest = dest;
        di.srcs = srcs;
        di.cluster = cluster;

        match class {
            Class::MemBar => {
                di.phase = InstPhase::Complete;
                di.next_pc = Some(di.pc + 1);
                self.threads[t].mb_stall_seq = Some(di.seq);
                self.threads[t].rob.push_back(id);
            }
            Class::Halt => {
                di.phase = InstPhase::Complete;
                di.next_pc = Some(di.pc);
                self.threads[t].rob.push_back(id);
            }
            _ => {
                if class == Class::Store {
                    let seq = di.seq;
                    let th = &mut self.threads[t];
                    th.store_q.push_back(id);
                    // Address unknown until the store executes. A new store
                    // is the youngest, so the oldest-unknown marker only
                    // changes when it was previously "none" — and a
                    // MAX→seq transition cannot newly gate any *older*
                    // waiting load, so no gate re-evaluation is needed.
                    th.unknown_stores += 1;
                    if th.oldest_unknown_seq == u64::MAX {
                        th.oldest_unknown_seq = seq;
                    }
                }
                self.cluster_pressure[cluster] += 1;
                self.threads[t].rob.push_back(id);
                let insert_at = now + self.cfg.dec_iq_stages as u64;
                self.threads[t].transit_q.push_back((insert_at, id));
            }
        }
        true
    }

    fn on_allocate_phys(&mut self, p: PhysReg) {
        self.physfile.mark_allocated(p);
        self.rpft.on_allocate(p);
        self.fwd.invalidate(p);
        for c in &mut self.crcs {
            c.invalidate(p);
        }
        for t in &mut self.itables {
            t.clear(p);
        }
        self.ready_at[p.index()] = u64::MAX;
        self.avail_cycle[p.index()] = u64::MAX;
        // No waiting entry can still reference the previous incarnation of
        // a freshly allocated register (its last reader retired before the
        // redefiner released it) — any leftover consumer records are stale.
        self.preg_consumers[p.index()].clear();
    }

    // ---------------------------------------------------------------- insert

    fn do_insert(&mut self, now: u64) {
        if now < self.frontend_stall_until {
            return;
        }
        // Nothing in DEC-IQ transit anywhere: the round-robin below would
        // only mark every thread blocked and exit, so skip it outright.
        if self.threads.iter().all(|th| th.transit_q.is_empty()) {
            return;
        }
        let nthreads = self.threads.len();
        let mut blocked = std::mem::take(&mut self.scratch.blocked);
        blocked.clear();
        blocked.resize(nthreads, false);
        #[allow(clippy::needless_range_loop)] // t also indexes self.threads
        loop {
            let mut progress = false;
            for t in 0..nthreads {
                if blocked[t] {
                    continue;
                }
                let Some(&(ready, id)) = self.threads[t].transit_q.front() else {
                    blocked[t] = true;
                    continue;
                };
                if ready > now || self.iq.free_slots() == 0 {
                    blocked[t] = true;
                    continue;
                }
                let di = self.slab.expect(id);
                let entry = IqEntry {
                    id,
                    seq: di.seq,
                    thread: t,
                    cluster: di.cluster,
                    state: IqState::Waiting,
                };
                let slot = self.iq.insert(entry);
                debug_assert!(slot.is_some());
                self.cluster_pressure[di.cluster] -= 1;
                if let Some(tr) = &mut self.tracer {
                    tr.stage(now, id, "Q");
                }
                let di = self.slab.expect_mut(id);
                di.phase = InstPhase::InIq;
                di.insert_cycle = now;
                if let Some(slot) = slot {
                    di.iq_slot = slot;
                }
                self.threads[t].transit_q.pop_front();
                if let Some(slot) = slot {
                    // New waiting tenure: hook up incremental readiness.
                    self.register_entry(slot, now);
                    self.reeval_entry(slot, now);
                }
                progress = true;
                self.progressed = true;
            }
            if !progress {
                break;
            }
        }
        self.scratch.blocked = blocked;
    }

    // ----------------------------------------------------------------- issue

    /// Earliest-issue constraint for one source operand.
    fn src_ready(&self, src: &SrcOperand, now: u64) -> bool {
        if src.payload_valid {
            return src.ready_at <= now;
        }
        // A consumer that already executed against a stale wake-up stays
        // blocked until the producer re-broadcasts (version change).
        if src.blocked_version == Some(self.ready_version[src.phys.index()]) {
            return false;
        }
        self.ready_at[src.phys.index()] <= now
    }

    pub(crate) fn entry_ready(&self, e: &IqEntry, now: u64) -> bool {
        let di = self.slab.expect(e.id);
        for src in di.srcs.iter().flatten() {
            if !self.src_ready(src, now) {
                return false;
            }
        }
        // Store-wait discipline: a load whose PC has trapped before must
        // wait for every older store's address. `oldest_unknown_seq` is
        // the incrementally maintained minimum over address-unknown
        // entries of the thread's store queue, so the old per-evaluation
        // queue scan reduces to one comparison.
        if di.class == Class::Load
            && self.store_wait.must_wait(di.pc)
            && self.threads[e.thread].oldest_unknown_seq < di.seq
        {
            return false;
        }
        true
    }

    fn do_issue(&mut self, now: u64) {
        // Fire due readiness timers (scheduled whenever a wake-up named a
        // finite future cycle). Stale records — the tenure ended, or the
        // wake-up moved again — are dropped or handled idempotently. The
        // O(1) cached `next_due` gate skips the drain when nothing fires.
        if self.ready_events.next_due().is_some_and(|d| d <= now) {
            let mut due = std::mem::take(&mut self.scratch.ready_due);
            self.ready_events.drain_due(now, &mut due);
            self.progressed |= !due.is_empty();
            for e in &due {
                let (slot, epoch) = e.payload;
                if self.iq.waiting_at_epoch(slot, epoch).is_some() {
                    self.reeval_entry(slot, now);
                }
            }
            self.scratch.ready_due = due;
        }

        // One selection per cluster: oldest ready waiting entry.
        if self.event_driven && self.iq.ready_total() == 0 {
            return; // no ready entry anywhere — nothing to select
        }
        let mut picks = std::mem::take(&mut self.scratch.picks);
        picks.clear();
        picks.resize(self.cfg.clusters, None);
        if self.event_driven {
            // The incrementally maintained ready lists are age-sorted, so
            // each cluster's pick is its list head — O(clusters), not
            // O(waiting × operands).
            for (cluster, pick) in picks.iter_mut().enumerate() {
                if let Some(e) = self.iq.ready_front(cluster) {
                    *pick = Some((e.seq, e.id));
                }
            }
        } else {
            // Naive reference: walk the age-sorted waiting lists and
            // evaluate every entry.
            for (cluster, pick) in picks.iter_mut().enumerate() {
                for i in 0..self.iq.waiting_len(cluster) {
                    let e = self.iq.waiting_entry(cluster, i);
                    if self.entry_ready(e, now) {
                        *pick = Some((e.seq, e.id));
                        break;
                    }
                }
            }
        }
        for &pick in &picks {
            if let Some((_, id)) = pick {
                self.progressed = true;
                self.issue_one(id, now);
            }
        }
        self.scratch.picks = picks;
    }

    fn issue_one(&mut self, id: InstId, now: u64) {
        if let Some(tr) = &mut self.tracer {
            tr.stage(now, id, "Is");
        }
        let y = self.cfg.iq_ex_stages as u64;
        let di = self.slab.expect_mut(id);
        di.issue_cycle = now;
        di.issue_count += 1;
        di.phase = InstPhase::Issued;
        let stamp = di.issue_count;
        let class = di.class;
        let dest = di.dest;
        let slot = di.iq_slot;
        self.iq.mark_issued(slot, id);
        let exec_at = now + y;
        self.exec_events.schedule(exec_at, (id, stamp));

        // Speculative wake-up broadcast: consumers may issue so they reach
        // execute exactly when the (predicted) result forwards.
        if let Some(DestRename { new, .. }) = dest {
            let lat = self.class_latency(class) as u64;
            let speculate_loads = !matches!(self.cfg.load_policy, LoadSpecPolicy::Stall);
            if class != Class::Load || speculate_loads {
                let predicted_complete = exec_at + lat - 1;
                self.set_ready_at(new, (predicted_complete + 1).saturating_sub(y));
            }
            // Under Stall, load consumers wake only once the outcome is
            // known (set in the execute stage).
        }
    }

    /// Deterministic execution latency by class; loads get AGU + L1-hit
    /// here (the speculative schedule), with the true latency applied at
    /// the data-cache access.
    fn class_latency(&self, class: Class) -> u32 {
        let l = &self.cfg.lat;
        match class {
            Class::IntAlu | Class::Branch | Class::CondBranch | Class::Jump => l.int_alu,
            Class::IntMul => l.int_mul,
            Class::FpAdd => l.fp_add,
            Class::FpMul => l.fp_mul,
            Class::FpDiv => l.fp_div,
            Class::Load => l.agu + self.hier.l1d_hit_latency(),
            Class::Store => l.agu,
            Class::MemBar | Class::Halt => 1,
        }
    }

    // --------------------------------------------------------------- execute

    fn do_execute(&mut self, now: u64) {
        // Nothing due: draining would be a no-op, so skip the buffer churn.
        // `next_due` is the cached drain cycle, so this gate is O(1).
        if self.exec_events.next_due().is_none_or(|d| d > now) {
            return;
        }
        let mut due = std::mem::take(&mut self.scratch.exec_due);
        self.exec_events.drain_due(now, &mut due);
        // Oldest-first so same-cycle store→load forwarding within a thread
        // resolves in program order. The wheel orders a batch by schedule
        // time, which usually — but not always (replays reschedule old
        // instructions late) — matches program order, so check before
        // paying for the sort. Instruction seq is the required key; the
        // wheel's own per-batch ordering is NOT a substitute.
        let mut list = std::mem::take(&mut self.scratch.exec_list);
        list.clear();
        list.extend(due.drain(..).filter_map(|e| {
            let (id, stamp) = e.payload;
            let di = self.slab.get(id)?;
            (di.issue_count == stamp && di.phase == InstPhase::Issued)
                .then_some((di.seq, id, stamp))
        }));
        self.scratch.exec_due = due;
        self.progressed |= !list.is_empty();
        if !list.is_sorted_by_key(|&(seq, _, _)| seq) {
            list.sort_unstable_by_key(|&(seq, _, _)| seq);
        }
        for &(_, id, stamp) in &list {
            // An older instruction in this very batch may have squashed or
            // replayed this one (branch recovery, memory trap, shadow
            // kill): re-validate before executing.
            let still_due = self
                .slab
                .get(id)
                .is_some_and(|di| di.issue_count == stamp && di.phase == InstPhase::Issued);
            if still_due {
                self.execute_one(id, now);
            }
        }
        self.scratch.exec_list = list;
    }

    /// Gathered operand values, or the reason execution must abort.
    fn gather_operands(
        &mut self,
        id: InstId,
        now: u64,
    ) -> Result<([u64; 2], [Option<OperandSource>; 2]), ExecAbort> {
        let di = self.slab.expect(id);
        let cluster = di.cluster;
        let srcs = di.srcs;
        let mut vals = [0u64; 2];
        let mut sources = [None; 2];
        for (i, src) in srcs.iter().enumerate() {
            let Some(src) = src else { continue };
            if src.payload_valid {
                vals[i] = src.payload;
                // A re-acquisition after an operand miss is not a new read.
                sources[i] = match src.obtained {
                    Some(OperandSource::Miss) => None,
                    _ => Some(OperandSource::PreRead),
                };
                continue;
            }
            let p = src.phys;
            if self.avail_cycle[p.index()] >= now {
                // Producer has not produced: load-shadow (or chained)
                // replay.
                return Err(ExecAbort::ProducerNotReady(i));
            }
            match self.cfg.scheme {
                RegisterScheme::Monolithic => {
                    // Forwarding buffer first; older values come from the
                    // monolithic register file read during IQ-EX.
                    if self.fwd.lookup(p, now).is_some() {
                        sources[i] = Some(OperandSource::Forward);
                    } else {
                        sources[i] = Some(OperandSource::RegFile);
                    }
                    vals[i] = self.physfile.read(p);
                }
                RegisterScheme::Dra { .. } => {
                    // Fault injection: force this lookup to miss. Safe
                    // because the producer-not-ready check above already
                    // passed — the value is in the register file, so the
                    // architected miss-recovery path delivers it.
                    if self
                        .injector
                        .as_mut()
                        .is_some_and(|inj| inj.drop_operand(now))
                    {
                        return Err(ExecAbort::OperandMiss(i));
                    }
                    if let Some(v) = self.fwd.lookup(p, now) {
                        vals[i] = v;
                        sources[i] = Some(OperandSource::Forward);
                    } else if let Some(v) = self.crcs[cluster].lookup(p) {
                        vals[i] = v;
                        sources[i] = Some(OperandSource::Crc);
                    } else {
                        return Err(ExecAbort::OperandMiss(i));
                    }
                }
            }
        }
        Ok((vals, sources))
    }

    fn execute_one(&mut self, id: InstId, now: u64) {
        match self.gather_operands(id, now) {
            Ok((vals, sources)) => self.execute_with(id, now, vals, sources),
            Err(ExecAbort::ProducerNotReady(slot)) => {
                // Block until the producer re-broadcasts its wake-up —
                // unless the value is completing this very cycle (no
                // further broadcast is coming; a plain retry suffices).
                {
                    let version = {
                        let di = self.slab.expect(id);
                        di.srcs[slot].and_then(|s| {
                            (self.avail_cycle[s.phys.index()] == u64::MAX)
                                .then(|| self.ready_version[s.phys.index()])
                        })
                    };
                    let di = self.slab.expect_mut(id);
                    if let Some(src) = di.srcs[slot].as_mut() {
                        src.blocked_version = version;
                    }
                }
                self.replay(id, ReplayCause::Producer)
            }
            Err(ExecAbort::OperandMiss(slot)) => self.operand_miss(id, slot, now),
        }
    }

    /// Put an issued instruction back to Waiting (it will reissue).
    fn replay(&mut self, id: InstId, cause: ReplayCause) {
        if let Some(tr) = &mut self.tracer {
            tr.stage(self.cycle, id, "Q");
        }
        let di = self.slab.expect_mut(id);
        di.phase = InstPhase::InIq;
        di.needs_replay = true;
        di.replay_component = Some(match cause {
            ReplayCause::Producer | ReplayCause::Shadow => CpiComponent::LoadResolution,
            ReplayCause::OperandMiss => CpiComponent::OperandResolution,
        });
        // Withdraw the speculative wake-up this issue broadcast: the
        // result is NOT coming on the predicted schedule. Consumers go
        // back to waiting until the replayed issue re-broadcasts;
        // otherwise they spin through issue -> execute -> replay.
        let dest = di.dest;
        if let Some(DestRename { new, .. }) = dest {
            if self.avail_cycle[new.index()] == u64::MAX {
                self.set_ready_at(new, u64::MAX);
            }
        }
        let slot = self.slab.expect(id).iq_slot;
        self.iq.mark_waiting(slot, id);
        // New waiting tenure: hook up incremental readiness. (Sources
        // whose producers re-blocked above register on the producer's
        // consumer list; the re-broadcast re-evaluates this entry.)
        self.register_entry(slot, self.cycle);
        self.reeval_entry(slot, self.cycle);
        match cause {
            // Producer-not-ready chains are rooted at mis-speculated loads
            // (deterministic-latency producers never disappoint their
            // consumers) — the paper's load-resolution-loop useless work.
            ReplayCause::Producer => self.stats.load_replays += 1,
            ReplayCause::OperandMiss => self.stats.operand_replays += 1,
            ReplayCause::Shadow => self.stats.shadow_replays += 1,
        }
    }

    /// DRA operand-resolution-loop mis-speculation: the value exists only
    /// in the register file. Read it there, deliver to the payload, replay,
    /// and stall the front end while the recovery runs (paper §5.4).
    fn operand_miss(&mut self, id: InstId, slot: usize, now: u64) {
        // The debug switch is immutable for the process lifetime; cache it
        // so the miss path does not pay an environment lookup per event.
        static DEBUG_MISS: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if *DEBUG_MISS.get_or_init(|| std::env::var_os("LOOSELOOPS_DEBUG_MISS").is_some()) {
            let di = self.slab.expect(id);
            let src = di.srcs[slot].as_ref().unwrap();
            eprintln!(
                "MISS pc={} inst={} arch={} phys={} cluster={} gap={} itable={} crc_has={} crc_len={}",
                di.pc, di.inst, src.arch, src.phys, di.cluster,
                now.saturating_sub(self.avail_cycle[src.phys.index()]),
                self.itables[di.cluster].count(src.phys),
                self.crcs[di.cluster].probe(src.phys).is_some(),
                self.crcs[di.cluster].len(),
            );
        }
        self.stats.operand_misses += 1;
        self.stats.operand_sources[4] += 1; // Miss bucket
        let delivery = now + self.cfg.rf_read_latency as u64;
        self.frontend_stall_until = self.frontend_stall_until.max(delivery);
        let y = self.cfg.iq_ex_stages as u64;
        let di = self.slab.expect_mut(id);
        let phys = di.srcs[slot].as_ref().expect("missing operand slot").phys;
        let src = di.srcs[slot].as_mut().expect("missing operand slot");
        src.obtained = Some(OperandSource::Miss);
        src.ready_at = (delivery + 1).saturating_sub(y);
        let value = self.physfile.read(phys);
        let src = self.slab.expect_mut(id).srcs[slot].as_mut().expect("slot");
        src.payload = value;
        src.payload_valid = true;
        self.replay(id, ReplayCause::OperandMiss);
    }

    fn execute_with(
        &mut self,
        id: InstId,
        now: u64,
        vals: [u64; 2],
        sources: [Option<OperandSource>; 2],
    ) {
        if let Some(tr) = &mut self.tracer {
            tr.stage(now, id, "X");
        }
        // Commit operand bookkeeping (stats + DRA insertion-table
        // decrements) only on successful execution.
        let (cluster, srcs_snapshot) = {
            let di = self.slab.expect(id);
            (di.cluster, di.srcs)
        };
        for (i, s) in sources.iter().enumerate() {
            let Some(s) = s else { continue };
            let bucket = match s {
                OperandSource::PreRead => 0,
                OperandSource::Forward => 1,
                OperandSource::Crc => 2,
                OperandSource::RegFile => 3,
                OperandSource::Miss => 4,
            };
            self.stats.operand_sources[bucket] += 1;
            if *s == OperandSource::Forward && self.cfg.scheme.is_dra() {
                if let Some(src) = &srcs_snapshot[i] {
                    self.itables[cluster].decrement(src.phys);
                    if let Some(slot) = self.slab.expect_mut(id).srcs[i].as_mut() {
                        slot.itable_pending = false;
                    }
                }
            }
        }
        // Record operand availability (Figure 6).
        {
            let rename_cycle = self.slab.expect(id).rename_cycle;
            let mut avail = [None, None];
            for (i, src) in srcs_snapshot.iter().enumerate() {
                let Some(src) = src else { continue };
                let a = if src.payload_valid {
                    rename_cycle
                } else {
                    self.avail_cycle[src.phys.index()].max(rename_cycle)
                };
                avail[i] = Some(a);
            }
            let di = self.slab.expect_mut(id);
            for (i, a) in avail.into_iter().enumerate() {
                if let (Some(slot), Some(a)) = (di.srcs[i].as_mut(), a) {
                    slot.avail_cycle = a;
                    if slot.obtained.is_none() {
                        slot.obtained = sources[i];
                    }
                }
            }
        }

        let di = self.slab.expect(id);
        let (inst, pc, t, seq, class) = (di.inst, di.pc, di.thread, di.seq, di.class);
        let s1 = if inst.rs1.is_zero() { 0 } else { vals[0] };
        let s2 = if inst.uses_imm {
            inst.imm as i64 as u64
        } else if inst.rs2.is_zero() {
            0
        } else {
            vals[1]
        };

        match class {
            Class::Load => self.execute_load(id, now, s1),
            Class::Store => self.execute_store(id, now, s1, s2),
            Class::CondBranch | Class::Branch | Class::Jump => self.execute_control(id, now, s1),
            Class::IntAlu | Class::IntMul | Class::FpAdd | Class::FpMul | Class::FpDiv => {
                let result = if inst.op == Opcode::Nop {
                    0
                } else {
                    eval_op(inst.op, s1, s2)
                };
                let lat = self.class_latency(class) as u64;
                self.finish_exec(id, now, now + lat - 1, Some(result), pc + 1, true);
            }
            Class::MemBar | Class::Halt => {
                unreachable!("barriers and halts never enter the IQ (thread {t}, seq {seq})")
            }
        }
    }

    /// Common execute epilogue: confirm the IQ entry, schedule completion.
    /// `broadcast` re-anchors the destination wake-up immediately; load
    /// misses pass `false` and deliver the correction later, after the
    /// load-resolution loop's feedback delay (see `execute_load`).
    fn finish_exec(
        &mut self,
        id: InstId,
        now: u64,
        complete_at: u64,
        result: Option<u64>,
        next_pc: u64,
        broadcast: bool,
    ) {
        let free_at = now + self.cfg.confirm_feedback as u64 + self.cfg.iq_clear_extra as u64;
        let slot = self.slab.expect(id).iq_slot;
        self.iq.mark_confirmed(slot, id, free_at);
        let y = self.cfg.iq_ex_stages as u64;
        let di = self.slab.expect_mut(id);
        di.result = result;
        di.next_pc = Some(next_pc);
        let stamp = di.issue_count;
        let dest = di.dest;
        if broadcast {
            if let Some(DestRename { new, .. }) = dest {
                // Re-anchor the wake-up to the true completion time.
                self.set_ready_at(new, (complete_at + 1).saturating_sub(y));
            }
        }
        self.complete_events
            .schedule(complete_at.max(now), (id, stamp));
    }

    fn execute_load(&mut self, id: InstId, now: u64, base: u64) {
        let agu = self.cfg.lat.agu as u64;
        let y = self.cfg.iq_ex_stages as u64;
        let (imm, t, seq, pc, size) = {
            let di = self.slab.expect(id);
            (di.inst.imm, di.thread, di.seq, di.pc, di.mem_size)
        };
        let addr = base.wrapping_add(imm as i64 as u64);

        // Memory-dependence check against older in-flight stores.
        let mut forwarded: Option<u64> = None;
        let mut conflict_pending = false;
        for &sid in self.threads[t].store_q.iter().rev() {
            let s = self.slab.expect(sid);
            if s.seq >= seq {
                continue;
            }
            match s.mem_addr.map(|sa| (sa, s.mem_size)) {
                Some(sa) if overlaps(sa, (addr, size)) => {
                    if contains(sa, (addr, size)) {
                        forwarded = Some(forward_value(
                            sa,
                            s.store_data.expect("store data"),
                            (addr, size),
                        ));
                    } else {
                        conflict_pending = true; // partial overlap: wait it out
                    }
                    break; // newest older store wins
                }
                Some(_) => continue,
                None => {} // unknown address: speculate past it
            }
        }
        if conflict_pending {
            // Rare partial-overlap case: retry once the store has retired.
            let di = self.slab.expect_mut(id);
            if let Some(src) = di.srcs[0].as_mut() {
                src.ready_at = ((now + 4 + 1).saturating_sub(y)).max(src.ready_at);
                if !src.payload_valid {
                    src.payload = base;
                    src.payload_valid = true;
                }
            }
            self.replay(id, ReplayCause::Producer);
            return;
        }

        // Timed cache access (wrong-path loads pollute realistically).
        let access = self.hier.access(AccessKind::DataRead, addr, now + agu - 1);
        // Train the optional stream prefetcher on demand loads.
        self.hier.observe_load(pc, addr);
        let hit = access.is_l1_hit();
        // Fault injection: a latency spike delays the value. Scheduling
        // treats a spiked hit as a miss (so the delayed wake-up correction
        // reaches consumers); the L1 hit/miss *stats* keep the real cache
        // outcome.
        let spike = self
            .injector
            .as_mut()
            .and_then(|inj| inj.load_spike(now))
            .unwrap_or(0);
        let sched_hit = hit && spike == 0;
        let complete_at = now + agu - 1 + access.latency as u64 + spike;
        let value = forwarded.unwrap_or_else(|| self.data_mem.read(addr, size));

        self.stats.loads += 1;
        self.stats
            .record_load_latency(agu + access.latency as u64 + spike);
        if hit {
            self.stats.load_l1_hits += 1;
        } else {
            self.stats.load_l1_misses += 1;
        }

        {
            let di = self.slab.expect_mut(id);
            di.mem_addr = Some(addr);
            di.load_l1_hit = Some(hit);
            di.tlb_trap = access.tlb_trap;
        }

        // The load-resolution loop: hit/miss becomes known at the end of
        // the (speculatively scheduled) hit latency.
        let known_at = now + agu - 1 + self.hier.l1d_hit_latency() as u64;
        if !sched_hit {
            match self.cfg.load_policy {
                LoadSpecPolicy::Stall | LoadSpecPolicy::ReissueTree => {}
                LoadSpecPolicy::ReissueShadow => self.kill_load_shadow(id, t),
                LoadSpecPolicy::Refetch => {
                    self.finish_exec(id, now, complete_at, Some(value), pc + 1, true);
                    self.refetch_after_load(id, known_at);
                    return;
                }
            }
        }
        if matches!(self.cfg.load_policy, LoadSpecPolicy::Stall) {
            // Consumers were never woken speculatively; wake them for the
            // known outcome, no earlier than the determination point.
            if let Some(DestRename { new, .. }) = self.slab.expect(id).dest {
                let v = ((complete_at + 1).saturating_sub(y)).max(known_at + 1);
                self.set_ready_at(new, v);
            }
            let di = self.slab.expect_mut(id);
            let stamp = di.issue_count;
            di.next_pc = Some(pc + 1);
            di.result = Some(value);
            let free_at = now + self.cfg.confirm_feedback as u64 + self.cfg.iq_clear_extra as u64;
            let slot = self.slab.expect(id).iq_slot;
            self.iq.mark_confirmed(slot, id, free_at);
            self.complete_events.schedule(complete_at, (id, stamp));
            return;
        }
        if sched_hit {
            self.finish_exec(id, now, complete_at, Some(value), pc + 1, true);
        } else {
            // The IQ keeps issuing against the stale hit-assumed schedule
            // until the miss signal traverses the load-resolution loop's
            // feedback path; only then does the corrected wake-up land.
            self.finish_exec(id, now, complete_at, Some(value), pc + 1, false);
            let stamp = self.slab.expect(id).issue_count;
            let corrected = (complete_at + 1).saturating_sub(y);
            self.wakeup_events.schedule(
                known_at + self.cfg.confirm_feedback as u64,
                (id, stamp, corrected),
            );
        }
    }

    /// 21264-style recovery: kill every issued-but-unconfirmed instruction
    /// of the thread (in the load shadow), dependent or not.
    fn kill_load_shadow(&mut self, load: InstId, t: usize) {
        let load_seq = self.slab.expect(load).seq;
        let mut to_replay = std::mem::take(&mut self.scratch.to_replay);
        to_replay.clear();
        to_replay.extend(self.iq.iter().filter_map(|e| {
            (e.thread == t
                && e.seq > load_seq
                && matches!(e.state, IqState::Issued)
                && e.id != load)
                .then_some(e.id)
        }));
        for &id in &to_replay {
            self.replay(id, ReplayCause::Shadow);
        }
        self.scratch.to_replay = to_replay;
    }

    /// Refetch recovery for a load miss: squash everything after the load
    /// and refetch from the next instruction.
    fn refetch_after_load(&mut self, load: InstId, redirect_at: u64) {
        let (t, seq, pc) = {
            let di = self.slab.expect(load);
            (di.thread, di.seq, di.pc)
        };
        self.squash_after(
            t,
            seq,
            pc + 1,
            redirect_at + 1,
            CpiComponent::LoadResolution,
        );
    }

    fn execute_store(&mut self, id: InstId, now: u64, base: u64, data: u64) {
        let (imm, t, seq, pc, size) = {
            let di = self.slab.expect(id);
            (di.inst.imm, di.thread, di.seq, di.pc, di.mem_size)
        };
        let addr = base.wrapping_add(imm as i64 as u64);
        let was_unknown = {
            let di = self.slab.expect_mut(id);
            let was = di.mem_addr.is_none();
            di.mem_addr = Some(addr);
            di.store_data = Some(data);
            was
        };
        if was_unknown {
            let th = &mut self.threads[t];
            th.unknown_stores -= 1;
            if th.oldest_unknown_seq == seq {
                // The oldest unknown address just resolved: advance the
                // marker and release any store-wait gates it was holding.
                self.recount_unknown_stores(t);
                self.drain_gated(t);
            }
        }

        // Memory-order violation: a younger load of ours already executed
        // against an overlapping address (it read stale data).
        let mut violator: Option<(u64, InstId)> = None;
        for &lid in &self.threads[t].rob {
            let l = self.slab.expect(lid);
            if l.seq <= seq || l.class != Class::Load {
                continue;
            }
            if let Some(la) = l.mem_addr {
                if overlaps((addr, size), (la, l.mem_size))
                    && matches!(l.phase, InstPhase::Issued | InstPhase::Complete)
                    && violator.map(|(s, _)| l.seq < s).unwrap_or(true)
                {
                    violator = Some((l.seq, lid));
                }
            }
        }
        let complete_at = now + self.cfg.lat.agu as u64 - 1;
        self.finish_exec(id, now, complete_at.max(now), None, pc + 1, true);

        if let Some((_, lid)) = violator {
            let (lseq, lpc) = {
                let l = self.slab.expect(lid);
                (l.seq, l.pc)
            };
            self.stats.mem_order_traps += 1;
            self.store_wait.mark(lpc);
            // Freshly predicted PC: ready-list loads at that PC (any
            // thread — the table is shared) must re-park behind their
            // older unknown stores before this cycle's issue stage runs.
            self.on_store_wait_marked(lpc);
            // Recovery stage is fetch (paper Figure 2, memory trap loop):
            // squash from the violating load inclusive and refetch it.
            self.squash_after(t, lseq - 1, lpc, now + 1, CpiComponent::MemoryTrap);
        }
    }

    fn execute_control(&mut self, id: InstId, now: u64, s1: u64) {
        let (inst, pc, t, class, has_dest) = {
            let di = self.slab.expect(id);
            (di.inst, di.pc, di.thread, di.class, di.dest.is_some())
        };
        let fall = pc + 1;
        let (taken, target) = match class {
            Class::CondBranch => {
                let tk = branch_taken(inst.op, s1);
                (
                    tk,
                    if tk {
                        (fall as i64 + inst.imm as i64) as u64
                    } else {
                        fall
                    },
                )
            }
            Class::Branch => (true, (fall as i64 + inst.imm as i64) as u64),
            Class::Jump => (true, s1),
            _ => unreachable!(),
        };
        let result = has_dest.then_some(fall); // link value for jsr/jmp

        // Prediction tables are trained at retire (in order, correct path
        // only); execute handles only detection and history repair.
        if class == Class::CondBranch {
            let di = self.slab.expect_mut(id);
            if di.holds_checkpoint {
                di.holds_checkpoint = false;
                self.threads[t].unresolved_branches -= 1;
            }
        }

        let (pred_next, history) = {
            let (di, cold) = self.slab.expect_both_mut(id);
            di.taken = Some(taken);
            // invariant: predict_control stamped a prediction on every
            // control instruction at fetch, before it could reach execute.
            let p = cold
                .pred
                .as_ref()
                .expect("control instructions carry predictions");
            (p.next_pc, p.history)
        };

        let lat = self.cfg.lat.int_alu as u64;
        self.finish_exec(id, now, now + lat - 1, result, target, true);

        if pred_next != target {
            // Mis-speculation on the branch-resolution loop.
            if class == Class::CondBranch {
                self.stats.branch_mispredicts += 1;
            } else {
                self.stats.target_mispredicts += 1;
            }
            self.stats.branch_squashes += 1;
            // Restore speculative history to the pre-branch snapshot, then
            // shift the true outcome in.
            self.pred.restore_history(history);
            if class == Class::CondBranch {
                self.pred.speculate_history(taken);
                let ctx = self
                    .slab
                    .expect_cold(id)
                    .pred
                    .as_ref()
                    .expect("prediction")
                    .ctx;
                self.pred.repair(pc, ctx, taken);
            }
            let seq = self.slab.expect(id).seq;
            let ras = self.slab.expect_cold_mut(id).ras_ckpt.take();
            if let Some(ras) = ras {
                self.threads[t].ras.restore_fixed(&ras);
                // Redo this instruction's own RAS effect.
                match inst.op {
                    Opcode::Jsr => self.threads[t].ras.push(fall),
                    Opcode::Ret => {
                        let _ = self.threads[t].ras.pop();
                    }
                    _ => {}
                }
            }
            // Branch-resolution feedback delay: one cycle.
            #[allow(unused_mut)]
            let mut redirect = target;
            #[cfg(feature = "chaos")]
            if self.cfg.chaos_branch_recovery_off_by_one && class == Class::CondBranch {
                // Seeded defect for the differential fuzzer: the recovery
                // redirect (not the architectural next_pc) lands one
                // instruction late, so post-recovery retirement diverges
                // from the oracle.
                redirect = redirect.wrapping_add(1);
            }
            self.squash_after(t, seq, redirect, now + 1, CpiComponent::BranchResolution);
        }
    }

    // -------------------------------------------------------------- complete

    fn do_complete(&mut self, now: u64) {
        // Nothing due: skip the drain entirely (O(1) cached check).
        if self.complete_events.next_due().is_none_or(|d| d > now) {
            return;
        }
        // Drain every due bucket. Results scheduled "for this cycle" during
        // a later stage of the previous iteration (single-cycle ops
        // complete in their execute cycle) are picked up here, one
        // simulator iteration later, stamped with their true cycle (the
        // wheel preserves each event's requested cycle).
        let mut drained = std::mem::take(&mut self.scratch.complete_due);
        self.complete_events.drain_due(now, &mut drained);
        // Program-order (instruction seq) sort, skipped when the batch
        // already arrives ordered — see `do_execute` for why the wheel's
        // schedule-time ordering is not a substitute for this key.
        let mut due = std::mem::take(&mut self.scratch.due);
        due.clear();
        due.extend(drained.drain(..).filter_map(|e| {
            let (id, stamp) = e.payload;
            let di = self.slab.get(id)?;
            (di.issue_count == stamp).then_some((di.seq, id, stamp, e.cycle))
        }));
        self.scratch.complete_due = drained;
        if !due.is_sorted_by_key(|&(seq, _, _, _)| seq) {
            due.sort_unstable_by_key(|&(seq, _, _, _)| seq);
        }
        self.progressed |= !due.is_empty();
        for &(_, id, _, cyc) in &due {
            if let Some(tr) = &mut self.tracer {
                tr.stage(now, id, "Cm");
            }
            let di = self.slab.expect_mut(id);
            di.phase = InstPhase::Complete;
            di.complete_cycle = cyc;
            let (dest, result) = (di.dest, di.result);
            if let (Some(DestRename { new, .. }), Some(v)) = (dest, result) {
                self.physfile.write(new, v);
                self.fwd.insert(new, v, cyc);
                self.avail_cycle[new.index()] = cyc;
                let y = self.cfg.iq_ex_stages as u64;
                let nv = self.ready_at[new.index()].min((cyc + 1).saturating_sub(y));
                self.set_ready_at(new, nv);
            }
        }
        self.scratch.due = due;
    }

    // ------------------------------------------------------------- writeback

    /// Register-file write-back: values leaving the forwarding buffer
    /// become pre-readable (RPFT) and, under the DRA, are captured by the
    /// cluster register caches whose insertion tables show outstanding
    /// consumers.
    fn do_writeback(&mut self, now: u64) {
        let mut expiring = std::mem::take(&mut self.scratch.expiring);
        self.fwd.expiring_into(now, &mut expiring);
        self.progressed |= !expiring.is_empty();
        for &(p, v) in &expiring {
            self.rpft.on_writeback(p);
            if self.cfg.scheme.is_dra() {
                for c in 0..self.cfg.clusters {
                    if self.itables[c].take_at_writeback(p) {
                        self.crcs[c].insert(p, v);
                    }
                }
            }
        }
        self.scratch.expiring = expiring;
        self.fwd.evict_expired(now);
    }

    // ---------------------------------------------------------------- retire

    fn do_retire(&mut self, now: u64) -> u64 {
        let mut budget = self.cfg.width;
        let nthreads = self.threads.len();
        let mut blocked = std::mem::take(&mut self.scratch.blocked);
        blocked.clear();
        blocked.resize(nthreads, false);
        #[allow(clippy::needless_range_loop)] // t also indexes self.threads
        'outer: loop {
            let mut progress = false;
            for t in 0..nthreads {
                if budget == 0 {
                    break 'outer;
                }
                if blocked[t] || self.threads[t].done {
                    blocked[t] = true;
                    continue;
                }
                let Some(&id) = self.threads[t].rob.front() else {
                    blocked[t] = true;
                    continue;
                };
                let di = self.slab.expect(id);
                if di.phase != InstPhase::Complete {
                    blocked[t] = true;
                    continue;
                }
                self.retire_one(t, id, now);
                budget -= 1;
                progress = true;
                if self.threads[t].done {
                    blocked[t] = true;
                }
            }
            if !progress {
                break;
            }
        }
        self.scratch.blocked = blocked;
        (self.cfg.width - budget) as u64
    }

    /// Charge this cycle's retire slots to the per-loop CPI stack:
    /// `retired` slots used, the rest lost to a single classified cause.
    fn attribute_cycle(&mut self, now: u64, retired: u64) {
        let width = self.cfg.width as u64;
        let cause = if retired < width {
            self.classify_lost_cycle(now)
        } else {
            CpiComponent::Base
        };
        self.stats.loop_cost.charge(width, retired, cause);
    }

    /// Why retire could not fill its slots this cycle. Inspects the oldest
    /// un-retired instruction across live threads (the commit bottleneck)
    /// and the thread's refill state after a squash.
    fn classify_lost_cycle(&self, now: u64) -> CpiComponent {
        // Oldest ROB head across not-done threads: the instruction the
        // retire stage is actually waiting on.
        let mut oldest: Option<(u64, usize, InstId)> = None;
        for (t, th) in self.threads.iter().enumerate() {
            if th.done {
                continue;
            }
            if let Some(&id) = th.rob.front() {
                let seq = self.slab.expect(id).seq;
                if oldest.is_none_or(|(s, _, _)| seq < s) {
                    oldest = Some((seq, t, id));
                }
            }
        }
        let Some((_, t, id)) = oldest else {
            // Every live ROB is empty: the pipe is refilling. Charge the
            // squash/barrier that caused it when known, else the DRA
            // operand-recovery stall, else the front end.
            for th in &self.threads {
                if !th.done {
                    if let Some((_, c)) = th.refill_cause {
                        return c;
                    }
                }
            }
            if self.threads.iter().all(|th| th.done) {
                return CpiComponent::Base; // end-of-program drain
            }
            if now < self.frontend_stall_until {
                return CpiComponent::OperandResolution;
            }
            return CpiComponent::Frontend;
        };
        let di = self.slab.expect(id);
        match di.phase {
            // Renamed but still in DEC-IQ transit: the window is refilling.
            InstPhase::FrontEnd => self.threads[t]
                .refill_cause
                .map(|(_, c)| c)
                .unwrap_or(CpiComponent::Frontend),
            InstPhase::InIq | InstPhase::Issued => {
                // A head load waiting on a confirmed L1 miss is memory
                // latency, not a loose loop.
                if di.class == Class::Load && di.load_l1_hit == Some(false) {
                    return CpiComponent::MemoryLatency;
                }
                if let Some(c) = di.replay_component {
                    return c;
                }
                CpiComponent::Base
            }
            // A Complete head means the width budget ran out mid-group or
            // another thread consumed the slots: steady-state cost.
            InstPhase::Complete | InstPhase::Retired => CpiComponent::Base,
        }
    }

    fn retire_one(&mut self, t: usize, id: InstId, now: u64) {
        let di = self.slab.expect(id);
        let (inst, pc, seq, tlb_trap, class) = (di.inst, di.pc, di.seq, di.tlb_trap, di.class);
        // invariant: only Complete-phase instructions retire, and every
        // path into Complete (finish_exec, rename of barriers/halts, the
        // Stall-policy load path) sets next_pc first.
        let next_pc = di
            .next_pc
            .expect("complete instructions know their next pc");
        let retired = Retired {
            pc,
            inst,
            wrote: di
                .dest
                .map(|d| (d.arch, di.result.expect("dest implies result"))),
            mem_addr: di.mem_addr.map(|a| (a, di.mem_size)),
            taken: di.taken.or(match class {
                Class::CondBranch => Some(next_pc != pc + 1),
                Class::Branch | Class::Jump => Some(true),
                _ => None,
            }),
            next_pc,
        };
        let pred_ctx = (class == Class::CondBranch)
            .then(|| self.slab.expect_cold(id).pred.as_ref().map(|p| p.ctx))
            .flatten();

        // Stores drain to memory at retire.
        if class == Class::Store {
            let addr = di.mem_addr.expect("stores know their address");
            let size = di.mem_size;
            let data = di.store_data.expect("stores stage their data");
            self.data_mem.write(addr, size, data);
            self.hier.access(AccessKind::DataWrite, addr, now);
            let front = self.threads[t].store_q.pop_front();
            debug_assert_eq!(front, Some(id), "stores retire in order");
        }

        if let Some(DestRename { prev, .. }) = di.dest {
            self.freelist.release(prev);
        }
        match class {
            Class::CondBranch => {
                self.stats.branches += 1;
                let ctx = pred_ctx.expect("conditional branches carry predictions");
                self.pred
                    .train_ctx(pc, ctx, retired.taken.expect("resolved branch"));
            }
            Class::Jump => {
                self.btb.update(pc, next_pc);
            }
            _ => {}
        }
        // Refill accounting: an instruction younger than the pending
        // squash/barrier marker retiring means the refill has delivered.
        if self.threads[t]
            .refill_cause
            .is_some_and(|(marker, _)| seq > marker)
        {
            self.threads[t].refill_cause = None;
        }
        match class {
            Class::MemBar => {
                self.stats.mem_barriers += 1;
                if self.threads[t].mb_stall_seq == Some(seq) {
                    self.threads[t].mb_stall_seq = None;
                }
                // The rename stall behind the barrier drains the window;
                // charge the bubble until post-barrier work retires.
                self.threads[t].refill_cause = Some((seq, CpiComponent::MemoryBarrier));
            }
            Class::Halt => {
                self.threads[t].done = true;
            }
            _ => {}
        }

        // Figure 6: operand availability gap, measured on retired
        // (correct-path) instructions.
        {
            let di = self.slab.expect(id);
            let mut a = [0u64; 2];
            let mut n = 0;
            for s in di.srcs.iter().flatten() {
                if s.avail_cycle != NO_CYCLE {
                    a[n & 1] = s.avail_cycle;
                    n += 1;
                }
            }
            let gap = if n == 2 { a[0].abs_diff(a[1]) } else { 0 };
            self.stats.record_gap(gap);
        }

        // Oracle check.
        {
            let th = &mut self.threads[t];
            if let Some((oracle, omem)) = &mut th.oracle {
                let expect = oracle.step(&th.program, omem).expect("oracle keeps pace");
                assert_eq!(
                    expect, retired,
                    "retire stream diverged from the functional model at thread {t} pc {pc} (cycle {now})"
                );
            }
        }
        if let Some(log) = &mut self.retire_capture {
            log.push((t, retired));
        }
        self.threads[t].arch_pc = next_pc;

        if let Some(tr) = &mut self.tracer {
            tr.retire(now, id);
        }
        self.threads[t].rob.pop_front();
        self.slab.release(id);
        self.stats.retired[t] += 1;

        // Post-retire traps: dTLB miss (recovery from the top of the pipe).
        if tlb_trap && !self.threads[t].done {
            self.stats.tlb_traps += 1;
            self.squash_after(t, seq, next_pc, now + 1, CpiComponent::MemoryTrap);
        }
    }

    // ---------------------------------------------------------------- squash

    /// Kill every instruction of `thread` younger than `after_seq`, roll
    /// back rename state, and redirect fetch to `new_pc` at `redirect_at`.
    /// The refill bubble that follows is charged to `cause` in the
    /// per-loop CPI stack until post-squash work retires.
    fn squash_after(
        &mut self,
        thread: usize,
        after_seq: u64,
        new_pc: u64,
        redirect_at: u64,
        cause: CpiComponent,
    ) {
        // Front-end queues: not yet renamed (decode_q) — just drop.
        let mut dropped = std::mem::take(&mut self.scratch.dropped);
        dropped.clear();
        let th = &mut self.threads[thread];
        while let Some(&(_, id)) = th.decode_q.back() {
            if self.slab.expect(id).seq > after_seq {
                th.decode_q.pop_back();
                dropped.push(id);
            } else {
                break;
            }
        }
        th.transit_q.retain(|&(_, id)| {
            // Renamed instructions also sit in the ROB; the ROB walk below
            // releases them.
            self.slab.expect(id).seq <= after_seq
        });
        th.store_q
            .retain(|&id| self.slab.expect(id).seq <= after_seq);
        if th.mb_stall_seq.is_some_and(|s| s > after_seq) {
            th.mb_stall_seq = None;
        }
        // Removed stores are all younger than every surviving load, so no
        // surviving gate can loosen — only the counters need repair.
        self.recount_unknown_stores(thread);

        // IQ entries (their slab records are released by the ROB walk).
        self.iq.squash(|e| e.thread == thread && e.seq > after_seq);

        // ROB walk, youngest first: rename rollback + slab release.
        while let Some(&id) = self.threads[thread].rob.back() {
            let di = self.slab.expect(id);
            if di.seq <= after_seq {
                break;
            }
            self.stats.squashed += 1;
            if di.issue_count > 0 {
                self.stats.squashed_after_issue += 1;
            }
            if di.phase == InstPhase::FrontEnd {
                // Still in DEC-IQ transit: release its slotting pressure.
                self.cluster_pressure[di.cluster] -= 1;
            }
            if di.holds_checkpoint {
                self.threads[thread].unresolved_branches -= 1;
            }
            // Optional idealization: undo this consumer's outstanding
            // insertion-table increments (real hardware leaves the 2-bit
            // counters polluted by wrong-path consumers).
            if self.cfg.scheme.is_dra() && self.cfg.dra_ideal_squash_cleanup {
                let cluster = di.cluster;
                let mut pend = [None; 2];
                for (i, s) in di.srcs.iter().flatten().enumerate() {
                    if s.itable_pending {
                        pend[i & 1] = Some(s.phys);
                    }
                }
                for p in pend.into_iter().flatten() {
                    self.itables[cluster].decrement(p);
                }
            }
            let di = self.slab.expect(id);
            if let Some(DestRename { arch, new, prev }) = di.dest {
                self.rename[thread].rollback(arch, prev, &mut self.freelist);
                // The squashed allocation must never satisfy later lookups.
                self.fwd.invalidate(new);
                for c in &mut self.crcs {
                    c.invalidate(new);
                }
                for it in &mut self.itables {
                    it.clear(new);
                }
                self.ready_at[new.index()] = 0;
                self.avail_cycle[new.index()] = 0;
                self.physfile.mark_ready(new);
            }
            if let Some(tr) = &mut self.tracer {
                tr.flush(self.cycle, id);
            }
            self.threads[thread].rob.pop_back();
            self.slab.release(id);
        }
        for &id in &dropped {
            self.stats.squashed += 1;
            if let Some(tr) = &mut self.tracer {
                tr.flush(self.cycle, id);
            }
            self.slab.release(id);
        }
        self.scratch.dropped = dropped;

        // Fetch redirect.
        let th = &mut self.threads[thread];
        th.fetch_pc = new_pc;
        th.fetch_suspended = false;
        th.fetch_stall_until = th.fetch_stall_until.max(redirect_at);
        // Everything fetched after this point carries seq > self.seq; until
        // one of those retires, lost retire slots belong to this squash.
        th.refill_cause = Some((self.seq, cause));
    }
}

/// Why execution could not proceed.
enum ExecAbort {
    /// The source at this slot has an in-flight producer (load shadow).
    ProducerNotReady(usize),
    /// DRA: source at the given slot missed payload/forward/CRC.
    OperandMiss(usize),
}

/// Replay-cause attribution for useless-work statistics.
enum ReplayCause {
    Producer,
    OperandMiss,
    Shadow,
}

#[cfg(test)]
mod timing_tests {
    use super::*;

    /// The paper's load-resolution-loop arithmetic: an IQ entry issued at T
    /// is confirmed at T + IQ-EX + feedback and cleared one cycle later.
    #[test]
    fn iq_entries_are_retained_for_the_loop_delay() {
        let prog = looseloops_isa::asm::assemble(
            "addi r1, r31, 5\ntop:\nadd r2, r2, r1\nsubi r1, r1, 1\nbne r1, top\nhalt",
        )
        .unwrap();
        let cfg = PipelineConfig::base();
        let loop_delay = cfg.load_loop_delay() as u64; // 8
        let clear = cfg.iq_clear_extra as u64;
        let mut m = Machine::new(cfg, vec![prog]).unwrap();
        m.enable_verification();
        // Step until the first instruction issues, then watch its entry.
        let mut issued_at = None;
        let mut freed_at = None;
        for _ in 0..2000 {
            m.step_cycle();
            let held: Vec<u64> = m.iq.iter().map(|e| e.seq).collect();
            if issued_at.is_none() {
                if let Some(e) = m.iq.iter().find(|e| e.seq == 1) {
                    if !matches!(e.state, IqState::Waiting) {
                        issued_at = Some(m.slab.expect(e.id).issue_cycle);
                    }
                }
            } else if freed_at.is_none() && !held.contains(&1) {
                freed_at = Some(m.cycle() - 1);
            }
            if m.is_done() {
                break;
            }
        }
        assert!(m.is_done());
        let (issued, freed) = (issued_at.unwrap(), freed_at.unwrap());
        assert_eq!(
            freed,
            issued + loop_delay + clear,
            "entry must persist for the load-resolution loop delay plus the clear cycle"
        );
    }

    /// Back-to-back dependent single-cycle ALU ops execute in consecutive
    /// cycles (the forwarding tight loop).
    #[test]
    fn dependent_alu_chain_is_back_to_back() {
        let prog = looseloops_isa::asm::assemble(
            "addi r1, r31, 1\naddi r1, r1, 1\naddi r1, r1, 1\naddi r1, r1, 1\nhalt",
        )
        .unwrap();
        let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
        m.enable_verification();
        let mut exec_cycles = Vec::new();
        for _ in 0..2000 {
            m.step_cycle();
            if m.is_done() {
                break;
            }
        }
        assert!(m.is_done());
        // Re-run capturing completion cycles via a fresh machine and the
        // retire capture (completion separation == 1 implies back-to-back).
        let prog = looseloops_isa::asm::assemble(
            "addi r1, r31, 1\naddi r1, r1, 1\naddi r1, r1, 1\naddi r1, r1, 1\nhalt",
        )
        .unwrap();
        let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
        loop {
            m.step_cycle();
            for e in m.iq.iter() {
                if let Some(di) = m.slab.get(e.id) {
                    let c = di.complete_cycle;
                    if c != crate::dyninst::NO_CYCLE && !exec_cycles.contains(&(di.seq, c)) {
                        exec_cycles.push((di.seq, c));
                    }
                }
            }
            if m.is_done() || m.cycle() > 2000 {
                break;
            }
        }
        assert!(m.is_done());
        exec_cycles.sort_unstable();
        exec_cycles.dedup_by_key(|&mut (s, _)| s);
        for w in exec_cycles.windows(2) {
            assert_eq!(
                w[1].1 - w[0].1,
                1,
                "dependent adds must complete in consecutive cycles: {exec_cycles:?}"
            );
        }
    }
}
