//! Cycle-level, execution-driven out-of-order SMT pipeline model — the
//! simulated machine of the *Loose Loops Sink Chips* reproduction.
//!
//! The model is an 8-wide, 8-cluster, 128-entry-IQ, 256-in-flight machine
//! with configurable DEC-IQ and IQ-EX latencies (the paper's two pipeline
//! knobs), a 9-cycle forwarding buffer, load-hit speculation with four
//! selectable recovery policies, branch prediction with fetch-time
//! speculative history, a store queue with memory-dependence prediction,
//! and an optional Distributed Register Algorithm (DRA) operand-delivery
//! scheme built from the structures in `looseloops-regs`.
//!
//! # Example
//!
//! ```
//! use looseloops_pipeline::{Machine, PipelineConfig};
//! use looseloops_isa::asm;
//!
//! let prog = asm::assemble(
//!     "
//!         addi r1, r31, 100
//!     top:
//!         add  r2, r2, r1
//!         subi r1, r1, 1
//!         bne  r1, top
//!         halt
//!     ",
//! ).unwrap();
//! let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
//! m.enable_verification();
//! let ipc = m.run(u64::MAX, 100_000).unwrap().ipc();
//! assert!(m.is_done());
//! assert!(ipc > 0.5);
//! ```
//!
//! Construction and run paths report failures as typed [`SimError`]s; the
//! opt-in per-cycle invariant auditor (`cfg.audit`), the forward-progress
//! watchdog (`cfg.watchdog_window`), and the deterministic fault-injection
//! harness ([`FaultPlan`]) form the simulation hardening layer.

pub mod audit;
pub mod config;
pub mod dyninst;
pub mod error;
pub mod faults;
pub mod iq;
pub mod lsq;
pub mod machine;
pub mod profile;
pub mod stats;
pub mod trace;
pub(crate) mod wheel;

pub use config::{ExecLatencies, LoadSpecPolicy, PipelineConfig, RegisterScheme};
pub use dyninst::{DynInst, InstId, InstPhase, OperandSource};
pub use error::{
    ConfigError, DeadlockError, InvariantKind, InvariantViolation, PipelineSnapshot, SimError,
    ThreadSnapshot,
};
pub use faults::{FaultInjector, FaultKind, FaultPlan, FaultSummary};
pub use iq::{IqEntry, IqState, IssueQueue};
pub use lsq::StoreWaitTable;
pub use machine::Machine;
pub use stats::{CpiComponent, LoopCostStack, SimStats};
pub use trace::PipelineTracer;
