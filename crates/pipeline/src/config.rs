//! Pipeline configuration.
//!
//! The two headline knobs of the paper are here: `dec_iq_stages` (decode →
//! IQ-insert latency, "DEC-IQ") and `iq_ex_stages` (issue → execute latency,
//! "IQ-EX"), plus the register-access scheme (monolithic baseline vs the
//! DRA) and the load-speculation policy ablations of §2.2.2.

use crate::error::ConfigError;
use crate::faults::FaultPlan;
use looseloops_branch::PredictorKind;
use looseloops_mem::{HierarchyConfig, TlbMissPolicy};

/// How register operands reach the functional units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterScheme {
    /// Paper §2 baseline: the monolithic register file is read on the
    /// IQ→EX path (its `rf_read_latency` is part of `iq_ex_stages`).
    Monolithic,
    /// Paper §4–5: register-file reads move to the DEC-IQ path (pre-read via
    /// the RPFT); cluster register caches catch what the forwarding buffer
    /// cannot. Introduces the operand-resolution loop.
    Dra {
        /// Entries per cluster register cache (paper: 16).
        crc_entries: usize,
        /// CRC replacement policy (paper: FIFO; LRU is the "smarter
        /// mechanism" the paper found unnecessary).
        crc_policy: looseloops_regs::CrcPolicy,
    },
}

impl RegisterScheme {
    /// Default DRA scheme with the paper's 16-entry FIFO CRCs.
    pub fn dra() -> RegisterScheme {
        RegisterScheme::Dra {
            crc_entries: 16,
            crc_policy: looseloops_regs::CrcPolicy::Fifo,
        }
    }

    /// True for [`RegisterScheme::Dra`].
    pub fn is_dra(self) -> bool {
        matches!(self, RegisterScheme::Dra { .. })
    }
}

/// How the machine manages the load-resolution loop (paper §2.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSpecPolicy {
    /// Do not speculate: consumers wake only after the load's hit/miss is
    /// known, adding the IQ-EX latency to load-to-use.
    Stall,
    /// Speculate that loads hit; on a miss, reissue only the issued
    /// instructions in the load's dependency tree (the paper's base
    /// machine).
    ReissueTree,
    /// Speculate; on a miss, kill and reissue *everything* issued in the
    /// load shadow, dependent or not (Alpha 21264 behaviour).
    ReissueShadow,
    /// Speculate; on a miss, squash and refetch from the instruction after
    /// the load (recovery stage = fetch). The paper found this
    /// "significantly worse than reissue".
    Refetch,
}

/// Execution latencies by instruction class, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLatencies {
    /// Single-cycle integer ALU.
    pub int_alu: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// FP add/sub/compare/convert.
    pub fp_add: u32,
    /// FP multiply.
    pub fp_mul: u32,
    /// FP divide.
    pub fp_div: u32,
    /// Address generation for loads/stores (cache latency is added by the
    /// memory hierarchy).
    pub agu: u32,
}

impl Default for ExecLatencies {
    fn default() -> ExecLatencies {
        ExecLatencies {
            int_alu: 1,
            int_mul: 7,
            fp_add: 4,
            fp_mul: 4,
            fp_div: 12,
            agu: 1,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Hardware threads (SMT). 1 or 2 in the paper's runs.
    pub threads: usize,
    /// Fetch/rename/insert/retire width (paper: 8).
    pub width: usize,
    /// Fetch stages before decode (instruction cache + line prediction).
    pub fetch_stages: u32,
    /// DEC-IQ: decode, rename, wire delay, IQ insertion (paper base: 5).
    pub dec_iq_stages: u32,
    /// IQ-EX: select, payload, register read, transport (paper base: 5).
    pub iq_ex_stages: u32,
    /// Register-file read latency (3/5/7 in the paper's studies). In the
    /// base scheme it is part of `iq_ex_stages`; under the DRA it moves
    /// into `dec_iq_stages`.
    pub rf_read_latency: u32,
    /// Unified instruction-queue capacity (paper: 128).
    pub iq_entries: usize,
    /// Maximum instructions in flight (paper: 256).
    pub max_in_flight: usize,
    /// Functional-unit clusters, one issue slot each (paper: 8).
    pub clusters: usize,
    /// Clusters capable of floating-point execution (the first
    /// `fp_clusters` of the array). Real 8-wide designs have fewer FP
    /// pipes than issue slots; this is what makes wasted FP issue slots
    /// (load-shadow replays) expensive.
    pub fp_clusters: usize,
    /// Clusters with a load/store port (the last `mem_clusters`).
    pub mem_clusters: usize,
    /// Physical registers shared by all threads.
    pub phys_regs: usize,
    /// Forwarding-buffer retention window (paper: 9 cycles).
    pub fwd_window: u64,
    /// Execute→IQ confirmation feedback delay (paper: 3 cycles, making the
    /// load-resolution loop delay `iq_ex_stages + 3`).
    pub confirm_feedback: u32,
    /// Extra cycles to clear a confirmed IQ entry (paper: "once tagged for
    /// eviction, extra cycles are needed").
    pub iq_clear_extra: u32,
    /// Register-operand delivery scheme.
    pub scheme: RegisterScheme,
    /// Load-resolution-loop management policy.
    pub load_policy: LoadSpecPolicy,
    /// Conditional-branch direction predictor.
    pub predictor: PredictorKind,
    /// Branch-target-buffer entries.
    pub btb_entries: usize,
    /// Return-address-stack entries.
    pub ras_entries: usize,
    /// Next-line-predictor entries.
    pub line_entries: usize,
    /// Execution latencies.
    pub lat: ExecLatencies,
    /// Memory hierarchy.
    pub mem: HierarchyConfig,
    /// Store-wait (memory dependence) predictor entries.
    pub store_wait_entries: usize,
    /// Maximum unresolved conditional branches in flight per thread
    /// (`None` = unbounded). Checkpoint-based recovery designs can only
    /// speculate past as many branches as they have map checkpoints; when
    /// the limit is reached, rename stalls at the next branch. The paper's
    /// machine is unbounded (ROB-walk recovery).
    pub branch_checkpoints: Option<usize>,
    /// DRA: on a squash, walk killed consumers and undo their outstanding
    /// insertion-table increments. Real hardware leaves the 2-bit counters
    /// polluted by wrong-path consumers (the default); enabling this
    /// idealization is an ablation knob for quantifying how much of the
    /// operand-miss rate is squash pollution.
    pub dra_ideal_squash_cleanup: bool,
    /// Run the per-cycle invariant auditor (freelist conservation, IQ/ROB
    /// occupancy, RPFT/CRC/insertion-table consistency — see `audit.rs`).
    /// Costs a few multiples of simulation speed; the test suites enable it,
    /// production sweeps leave it off.
    pub audit: bool,
    /// Forward-progress watchdog: if no thread retires an instruction for
    /// this many cycles while un-halted threads still have work,
    /// [`crate::Machine::run`] returns a [`crate::DeadlockError`] instead of
    /// burning to `max_cycles`. `0` disables the watchdog.
    pub watchdog_window: u64,
    /// Fault-injection schedule (`None` = no injection).
    pub faults: Option<FaultPlan>,
    /// Seeded defect (`chaos` build feature only, default off): corrupt
    /// every branch-recovery squash redirect by +1 instruction. Exists so
    /// the differential fuzzer can prove it catches real pipeline bugs;
    /// unlike `faults`, this perturbs *architectural* behavior.
    #[cfg(feature = "chaos")]
    pub chaos_branch_recovery_off_by_one: bool,
}

impl Default for PipelineConfig {
    /// The paper's base machine: 8-wide, 8 clusters, 128-entry IQ, 256 in
    /// flight, 5-cycle DEC-IQ, 5-cycle IQ-EX (3 of them register-file
    /// read), 9-cycle forwarding buffer, tree-reissue load speculation,
    /// tournament predictor.
    fn default() -> PipelineConfig {
        PipelineConfig {
            threads: 1,
            width: 8,
            fetch_stages: 3,
            dec_iq_stages: 5,
            iq_ex_stages: 5,
            rf_read_latency: 3,
            iq_entries: 128,
            max_in_flight: 256,
            clusters: 8,
            fp_clusters: 4,
            mem_clusters: 4,
            phys_regs: 512,
            fwd_window: 9,
            confirm_feedback: 3,
            iq_clear_extra: 1,
            scheme: RegisterScheme::Monolithic,
            load_policy: LoadSpecPolicy::ReissueTree,
            predictor: PredictorKind::Tournament,
            btb_entries: 2048,
            ras_entries: 16,
            line_entries: 1024,
            lat: ExecLatencies::default(),
            mem: {
                // The paper's machine services dTLB misses as traps that
                // recover from the top of the pipe (its turb3d analysis).
                let mut m = HierarchyConfig::default();
                m.dtlb.miss_policy = TlbMissPolicy::Trap;
                m
            },
            store_wait_entries: 1024,
            branch_checkpoints: None,
            dra_ideal_squash_cleanup: false,
            audit: false,
            watchdog_window: 50_000,
            faults: None,
            #[cfg(feature = "chaos")]
            chaos_branch_recovery_off_by_one: false,
        }
    }
}

impl PipelineConfig {
    /// The paper's base machine (alias of `Default`).
    pub fn base() -> PipelineConfig {
        PipelineConfig::default()
    }

    /// Base machine with explicit DEC-IQ / IQ-EX latencies (the `X_Y`
    /// notation of Figures 4, 5, and 8).
    pub fn base_with_latencies(dec_iq: u32, iq_ex: u32) -> PipelineConfig {
        PipelineConfig {
            dec_iq_stages: dec_iq,
            iq_ex_stages: iq_ex,
            ..PipelineConfig::default()
        }
    }

    /// Base (monolithic) machine for a given register-file read latency:
    /// DEC-IQ stays 5, IQ-EX = 2 + `rf_read` (paper §6: 5_5, 5_7, 5_9 for
    /// 3/5/7-cycle register files).
    pub fn base_for_rf(rf_read: u32) -> PipelineConfig {
        PipelineConfig {
            rf_read_latency: rf_read,
            iq_ex_stages: 2 + rf_read,
            ..PipelineConfig::default()
        }
    }

    /// DRA machine for a given register-file read latency: IQ-EX shrinks to
    /// 3 (select + payload/forward/CRC + transport) and DEC-IQ holds the
    /// pre-read: 2 + `rf_read` stages, min 5 (paper §6: 5_3, 7_3, 9_3).
    pub fn dra_for_rf(rf_read: u32) -> PipelineConfig {
        PipelineConfig {
            rf_read_latency: rf_read,
            dec_iq_stages: (2 + rf_read).max(5),
            iq_ex_stages: 3,
            scheme: RegisterScheme::dra(),
            ..PipelineConfig::default()
        }
    }

    /// Two-threaded SMT variant of this configuration.
    pub fn smt(mut self, threads: usize) -> PipelineConfig {
        self.threads = threads;
        self
    }

    /// Decode→execute latency (the paper's Figure 4 x-axis).
    pub fn dec_to_ex(&self) -> u32 {
        self.dec_iq_stages + self.iq_ex_stages
    }

    /// The load-resolution loop delay: loop length (IQ-EX) plus the
    /// confirmation feedback (paper §2.2.2: 5 + 3 = 8 in the base machine).
    pub fn load_loop_delay(&self) -> u32 {
        self.iq_ex_stages + self.confirm_feedback
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first problem found as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.threads == 0 || self.threads > 4 {
            return Err(ConfigError::ThreadCount { got: self.threads });
        }
        if self.width == 0 || self.clusters == 0 {
            return Err(ConfigError::ZeroWidthOrClusters);
        }
        if self.branch_checkpoints == Some(0) {
            return Err(ConfigError::NoBranchCheckpoints);
        }
        if self.fp_clusters == 0 || self.fp_clusters > self.clusters {
            return Err(ConfigError::FpClusters {
                fp_clusters: self.fp_clusters,
                clusters: self.clusters,
            });
        }
        if self.mem_clusters == 0 || self.mem_clusters > self.clusters {
            return Err(ConfigError::MemClusters {
                mem_clusters: self.mem_clusters,
                clusters: self.clusters,
            });
        }
        if self.iq_ex_stages < 1 {
            return Err(ConfigError::IqExTooShort);
        }
        if self.dec_iq_stages < 1 {
            return Err(ConfigError::DecIqTooShort);
        }
        let arch = 64 * self.threads;
        if self.phys_regs < arch + self.max_in_flight {
            return Err(ConfigError::TooFewPhysRegs {
                phys_regs: self.phys_regs,
                arch,
                max_in_flight: self.max_in_flight,
            });
        }
        if self.scheme == RegisterScheme::Monolithic && self.iq_ex_stages < self.rf_read_latency {
            return Err(ConfigError::MonolithicRfReadTooLong {
                iq_ex_stages: self.iq_ex_stages,
                rf_read_latency: self.rf_read_latency,
            });
        }
        if let RegisterScheme::Dra { crc_entries, .. } = self.scheme {
            if crc_entries == 0 {
                return Err(ConfigError::EmptyCrc);
            }
            if self.dec_iq_stages < 2 + self.rf_read_latency {
                return Err(ConfigError::DraDecIqTooShort {
                    dec_iq_stages: self.dec_iq_stages,
                    rf_read_latency: self.rf_read_latency,
                });
            }
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_paper_numbers() {
        let c = PipelineConfig::base();
        assert_eq!(c.dec_to_ex(), 10);
        assert_eq!(
            c.load_loop_delay(),
            8,
            "paper §2.2.2: loop delay is 8 cycles"
        );
        assert_eq!(c.iq_entries, 128);
        assert_eq!(c.max_in_flight, 256);
        assert_eq!(c.width, 8);
        assert_eq!(c.clusters, 8);
        assert_eq!(c.fwd_window, 9);
        c.validate().unwrap();
    }

    #[test]
    fn rf_sweep_configs_match_section6() {
        // Base:5_5 / DRA:5_3 at RF=3; Base:5_7 / DRA:7_3 at RF=5;
        // Base:5_9 / DRA:9_3 at RF=7.
        for (rf, base_ex, dra_dec) in [(3, 5, 5), (5, 7, 7), (7, 9, 9)] {
            let b = PipelineConfig::base_for_rf(rf);
            assert_eq!((b.dec_iq_stages, b.iq_ex_stages), (5, base_ex));
            b.validate().unwrap();
            let d = PipelineConfig::dra_for_rf(rf);
            assert_eq!((d.dec_iq_stages, d.iq_ex_stages), (dra_dec, 3));
            assert!(d.scheme.is_dra());
            d.validate().unwrap();
            // The DRA shortens the overall pipe by 2 in every pairing.
            assert_eq!(b.dec_to_ex() - d.dec_to_ex(), 2);
        }
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut c = PipelineConfig::base();
        c.phys_regs = 100;
        assert!(c.validate().is_err());

        let mut c = PipelineConfig::base();
        c.iq_ex_stages = 2; // shorter than the 3-cycle RF read
        assert!(c.validate().is_err());

        let mut c = PipelineConfig::dra_for_rf(5);
        c.dec_iq_stages = 4;
        assert!(c.validate().is_err());

        let mut c = PipelineConfig::base();
        c.threads = 9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn smt_builder() {
        let c = PipelineConfig::base().smt(2);
        assert_eq!(c.threads, 2);
        c.validate().unwrap();
    }
}
