//! The unified instruction queue (IQ).
//!
//! Holds dependency-wait state for up to `capacity` instructions across all
//! threads. Instructions are *retained after issue* until the execute stage
//! confirms they will not replay; the confirmation takes `iq_ex_stages +
//! confirm_feedback` cycles (the load-resolution loop delay) plus an extra
//! cycle to clear the entry — the IQ-pressure effect of paper §2.2.2.
//!
//! # Organization
//!
//! Entries live in a fixed slot arena with a free-list, so an entry's slot
//! number is stable for its whole IQ residency and the machine can reach
//! it in O(1) through the `iq_slot` hint stored on the dynamic
//! instruction. Two side structures keep the per-cycle scans off the
//! arena:
//!
//! - per-cluster *waiting lists* (slot indices, age-sorted by `seq`) — the
//!   issue stage walks only waiting entries, oldest first, instead of
//!   rescanning every slot;
//! - a FIFO *release queue* of confirmed entries — confirmation delay is a
//!   machine constant, so `free_at` values are confirmed in nondecreasing
//!   order and releasing due entries only inspects the queue front.
//!
//! Squashes clear slots in place; stale release-queue records are
//! recognized (and skipped) by the entry's unique `seq`. Steady-state
//! operation allocates nothing: the arena, free-list, waiting lists and
//! release queue all retain their high-water capacity.

use crate::dyninst::InstId;
use std::collections::VecDeque;

/// Wait-state of one IQ entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IqState {
    /// Waiting for operands.
    Waiting,
    /// Issued speculatively; retained in case of replay.
    Issued,
    /// Confirmed by execute; the slot frees at the embedded cycle.
    Confirmed {
        /// Cycle at which the entry's slot is reusable.
        free_at: u64,
    },
}

/// One IQ entry.
#[derive(Debug, Clone, Copy)]
pub struct IqEntry {
    /// Instruction handle.
    pub id: InstId,
    /// Global age (issue priority: oldest first).
    pub seq: u64,
    /// Owning thread.
    pub thread: usize,
    /// Cluster the instruction was slotted to at decode.
    pub cluster: usize,
    /// Wait-state.
    pub state: IqState,
}

/// The unified, clustered instruction queue.
#[derive(Debug)]
pub struct IssueQueue {
    /// Slot arena; `None` slots are on the free-list.
    slots: Vec<Option<IqEntry>>,
    /// Reusable slot indices (LIFO).
    free: Vec<u32>,
    /// Per-cluster waiting entries as slot indices, `seq`-ascending.
    waiting: Vec<Vec<u32>>,
    /// Confirmed entries in confirmation order: `(free_at, slot, seq)`.
    /// `free_at` is nondecreasing (constant confirmation delay).
    release_q: VecDeque<(u64, u32, u64)>,
    per_cluster: Vec<u32>,
    /// Live entries.
    len: usize,
    /// Live entries not in `Waiting` state (issued + confirmed).
    not_waiting: usize,
    // Statistics.
    occupancy_sum: u64,
    issued_occupancy_sum: u64,
    samples: u64,
    peak: usize,
}

impl IssueQueue {
    /// An empty IQ with `capacity` slots serving `clusters` clusters.
    pub fn new(capacity: usize, clusters: usize) -> IssueQueue {
        IssueQueue {
            slots: vec![None; capacity],
            // Reversed so slot 0 is handed out first.
            free: (0..capacity as u32).rev().collect(),
            waiting: vec![Vec::new(); clusters],
            release_q: VecDeque::new(),
            per_cluster: vec![0; clusters],
            len: 0,
            not_waiting: 0,
            occupancy_sum: 0,
            issued_occupancy_sum: 0,
            samples: 0,
            peak: 0,
        }
    }

    /// Entries currently slotted to `cluster` (for least-loaded slotting at
    /// decode).
    #[inline]
    pub fn cluster_len(&self, cluster: usize) -> u32 {
        self.per_cluster[cluster]
    }

    /// Slots in use (waiting + issued + not-yet-cleared confirmed entries).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free slots available for insertion.
    #[inline]
    pub fn free_slots(&self) -> usize {
        self.slots.len() - self.len
    }

    /// Total slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupancy by wait-state: (waiting, issued, confirmed).
    pub fn state_breakdown(&self) -> (usize, usize, usize) {
        let mut b = (0, 0, 0);
        for e in self.iter() {
            match e.state {
                IqState::Waiting => b.0 += 1,
                IqState::Issued => b.1 += 1,
                IqState::Confirmed { .. } => b.2 += 1,
            }
        }
        b
    }

    /// True when the per-cluster tallies match the entries (auditor check).
    pub fn cluster_counts_consistent(&self) -> bool {
        let mut counts = vec![0u32; self.per_cluster.len()];
        for e in self.iter() {
            match counts.get_mut(e.cluster) {
                Some(c) => *c += 1,
                None => return false,
            }
        }
        counts == self.per_cluster
    }

    /// True when every waiting list holds exactly the `Waiting` entries of
    /// its cluster, age-sorted (auditor check).
    pub fn waiting_lists_consistent(&self) -> bool {
        let mut listed = 0;
        for (cluster, list) in self.waiting.iter().enumerate() {
            let mut prev = None;
            for &slot in list {
                let Some(e) = self.slots.get(slot as usize).and_then(Option::as_ref) else {
                    return false;
                };
                if e.cluster != cluster || e.state != IqState::Waiting {
                    return false;
                }
                if prev.is_some_and(|p| p >= e.seq) {
                    return false;
                }
                prev = Some(e.seq);
                listed += 1;
            }
        }
        listed == self.len - self.not_waiting
    }

    /// Insert an instruction; returns its slot, or `None` (and does
    /// nothing) when full. The caller stores the slot on the dynamic
    /// instruction (`iq_slot`) for O(1) state transitions.
    pub fn insert(&mut self, entry: IqEntry) -> Option<u32> {
        debug_assert_eq!(entry.state, IqState::Waiting, "insertions start waiting");
        let slot = self.free.pop()?;
        self.per_cluster[entry.cluster] += 1;
        self.len += 1;
        self.peak = self.peak.max(self.len);
        self.waiting_insert(entry.cluster, slot, entry.seq);
        self.slots[slot as usize] = Some(entry);
        Some(slot)
    }

    /// Age-ordered insertion into a cluster's waiting list.
    fn waiting_insert(&mut self, cluster: usize, slot: u32, seq: u64) {
        let slots = &self.slots;
        let list = &mut self.waiting[cluster];
        let pos = list.partition_point(|&s| {
            // invariant: waiting lists reference live slots only.
            slots[s as usize].as_ref().expect("live waiting slot").seq < seq
        });
        list.insert(pos, slot);
    }

    /// Remove `slot` (holding `seq`) from a cluster's waiting list.
    fn waiting_remove(&mut self, cluster: usize, slot: u32, seq: u64) {
        let slots = &self.slots;
        let list = &mut self.waiting[cluster];
        let pos = list
            .partition_point(|&s| slots[s as usize].as_ref().expect("live waiting slot").seq < seq);
        debug_assert!(
            pos < list.len() && list[pos] == slot,
            "waiting list holds the entry"
        );
        list.remove(pos);
    }

    /// Waiting entries of `cluster` (age-ascending walk for select).
    #[inline]
    pub fn waiting_len(&self, cluster: usize) -> usize {
        self.waiting[cluster].len()
    }

    /// The `i`-th oldest waiting entry of `cluster`.
    #[inline]
    pub fn waiting_entry(&self, cluster: usize, i: usize) -> &IqEntry {
        let slot = self.waiting[cluster][i];
        // invariant: waiting lists reference live slots only.
        self.slots[slot as usize]
            .as_ref()
            .expect("live waiting slot")
    }

    /// Entry at `slot` if it is live and holds `id` (the `iq_slot` hint on
    /// a dynamic instruction may be stale after a squash).
    fn entry_at(&mut self, slot: u32, id: InstId) -> Option<&mut IqEntry> {
        self.slots
            .get_mut(slot as usize)?
            .as_mut()
            .filter(|e| e.id == id)
    }

    /// Waiting → Issued (select); drops the entry from its waiting list.
    pub fn mark_issued(&mut self, slot: u32, id: InstId) {
        let Some(e) = self.entry_at(slot, id) else {
            return;
        };
        debug_assert_eq!(e.state, IqState::Waiting, "issue selects waiting entries");
        if e.state != IqState::Waiting {
            return;
        }
        e.state = IqState::Issued;
        let (cluster, seq) = (e.cluster, e.seq);
        self.not_waiting += 1;
        self.waiting_remove(cluster, slot, seq);
    }

    /// Issued → Waiting (replay); the entry rejoins its waiting list in
    /// age order.
    pub fn mark_waiting(&mut self, slot: u32, id: InstId) {
        let Some(e) = self.entry_at(slot, id) else {
            return;
        };
        if e.state != IqState::Issued {
            debug_assert!(
                matches!(e.state, IqState::Waiting),
                "replay only rewinds issued entries"
            );
            return;
        }
        e.state = IqState::Waiting;
        let (cluster, seq) = (e.cluster, e.seq);
        self.not_waiting -= 1;
        self.waiting_insert(cluster, slot, seq);
    }

    /// Issued → Confirmed (execute will not replay); the slot frees at
    /// `free_at`. Confirmation delay is a machine constant, so calls see
    /// nondecreasing `free_at` — the release queue stays sorted.
    pub fn mark_confirmed(&mut self, slot: u32, id: InstId, free_at: u64) {
        let Some(e) = self.entry_at(slot, id) else {
            return;
        };
        debug_assert_eq!(e.state, IqState::Issued, "only issued entries confirm");
        if !matches!(e.state, IqState::Issued) {
            return;
        }
        e.state = IqState::Confirmed { free_at };
        let seq = e.seq;
        debug_assert!(
            self.release_q.back().is_none_or(|&(f, _, _)| f <= free_at),
            "confirmation delay is constant, so free_at must be nondecreasing"
        );
        self.release_q.push_back((free_at, slot, seq));
    }

    /// Iterate all live entries (slot order).
    pub fn iter(&self) -> impl Iterator<Item = &IqEntry> {
        self.slots.iter().flatten()
    }

    /// Release confirmed entries whose `free_at` has arrived.
    pub fn release_confirmed(&mut self, now: u64) {
        while let Some(&(free_at, slot, seq)) = self.release_q.front() {
            if free_at > now {
                break;
            }
            self.release_q.pop_front();
            // A squash may have cleared the slot (and may have refilled it
            // with a younger entry): the unique `seq` disambiguates.
            let live = self.slots[slot as usize]
                .as_ref()
                .is_some_and(|e| e.seq == seq && matches!(e.state, IqState::Confirmed { .. }));
            if !live {
                continue;
            }
            // invariant: `live` above proved the slot occupied.
            let e = self.slots[slot as usize].take().expect("live slot");
            self.per_cluster[e.cluster] -= 1;
            self.len -= 1;
            self.not_waiting -= 1;
            self.free.push(slot);
        }
    }

    /// Remove entries selected by `kill` (squash). Returns how many were
    /// removed (for useless-work accounting).
    pub fn squash(&mut self, mut kill: impl FnMut(&IqEntry) -> bool) -> usize {
        let mut removed = 0;
        for slot in 0..self.slots.len() as u32 {
            let Some(e) = self.slots[slot as usize] else {
                continue;
            };
            if !kill(&e) {
                continue;
            }
            if e.state == IqState::Waiting {
                self.waiting_remove(e.cluster, slot, e.seq);
            } else {
                self.not_waiting -= 1;
            }
            // Stale release-queue records are skipped by their seq check.
            self.slots[slot as usize] = None;
            self.per_cluster[e.cluster] -= 1;
            self.len -= 1;
            self.free.push(slot);
            removed += 1;
        }
        removed
    }

    /// Record one cycle's occupancy statistics.
    #[inline]
    pub fn sample_occupancy(&mut self) {
        self.samples += 1;
        self.occupancy_sum += self.len as u64;
        self.issued_occupancy_sum += self.not_waiting as u64;
    }

    /// (mean occupancy, mean post-issue occupancy, peak) over the sampled
    /// cycles.
    pub fn occupancy_stats(&self) -> (f64, f64, usize) {
        if self.samples == 0 {
            return (0.0, 0.0, self.peak);
        }
        (
            self.occupancy_sum as f64 / self.samples as f64,
            self.issued_occupancy_sum as f64 / self.samples as f64,
            self.peak,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, cluster: usize) -> IqEntry {
        IqEntry {
            id: InstId {
                slot: seq as u32,
                gen: 0,
            },
            seq,
            thread: 0,
            cluster,
            state: IqState::Waiting,
        }
    }

    /// Insert and return the (slot, id) pair for follow-up transitions.
    fn put(q: &mut IssueQueue, seq: u64, cluster: usize) -> (u32, InstId) {
        let e = entry(seq, cluster);
        let slot = q.insert(e).expect("capacity");
        (slot, e.id)
    }

    #[test]
    fn capacity_is_enforced() {
        let mut q = IssueQueue::new(2, 4);
        assert!(q.insert(entry(1, 0)).is_some());
        assert!(q.insert(entry(2, 1)).is_some());
        assert!(q.insert(entry(3, 2)).is_none(), "full IQ rejects insertion");
        assert_eq!(q.len(), 2);
        assert_eq!(q.free_slots(), 0);
        assert!(q.cluster_counts_consistent());
        assert!(q.waiting_lists_consistent());
    }

    #[test]
    fn confirmed_entries_release_on_time() {
        let mut q = IssueQueue::new(4, 4);
        let (slot, id) = put(&mut q, 1, 0);
        q.mark_issued(slot, id);
        q.mark_confirmed(slot, id, 10);
        q.release_confirmed(9);
        assert_eq!(q.len(), 1, "not yet");
        q.release_confirmed(10);
        assert_eq!(q.len(), 0);
        assert_eq!(q.free_slots(), 4);
    }

    #[test]
    fn squash_removes_matching() {
        let mut q = IssueQueue::new(8, 4);
        for s in 1..=5 {
            q.insert(entry(s, 0));
        }
        let killed = q.squash(|e| e.seq > 3);
        assert_eq!(killed, 2);
        assert_eq!(q.len(), 3);
        assert!(q.cluster_counts_consistent());
        assert!(q.waiting_lists_consistent());
    }

    #[test]
    fn occupancy_sampling() {
        let mut q = IssueQueue::new(8, 4);
        put(&mut q, 1, 0);
        let (slot, id) = put(&mut q, 2, 0);
        q.mark_issued(slot, id);
        q.sample_occupancy();
        let (mean, issued_mean, peak) = q.occupancy_stats();
        assert_eq!(mean, 2.0);
        assert_eq!(issued_mean, 1.0);
        assert_eq!(peak, 2);
    }

    #[test]
    fn waiting_lists_stay_age_sorted_across_replay() {
        let mut q = IssueQueue::new(8, 2);
        // Out-of-order insertion (SMT threads interleave seqs).
        let (s3, id3) = put(&mut q, 3, 1);
        let (s1, _id1) = put(&mut q, 1, 1);
        let (_s5, _id5) = put(&mut q, 5, 1);
        assert_eq!(
            (0..q.waiting_len(1))
                .map(|i| q.waiting_entry(1, i).seq)
                .collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        // Issue the oldest two, replay one: it rejoins in age order.
        q.mark_issued(s1, entry(1, 1).id);
        q.mark_issued(s3, id3);
        q.mark_waiting(s3, id3);
        assert_eq!(
            (0..q.waiting_len(1))
                .map(|i| q.waiting_entry(1, i).seq)
                .collect::<Vec<_>>(),
            vec![3, 5]
        );
        assert!(q.waiting_lists_consistent());
    }

    #[test]
    fn stale_release_records_are_skipped_after_squash_and_reuse() {
        let mut q = IssueQueue::new(1, 1);
        let (slot, id) = put(&mut q, 1, 0);
        q.mark_issued(slot, id);
        q.mark_confirmed(slot, id, 5);
        // Squash before the release cycle; the record for seq 1 is stale.
        assert_eq!(q.squash(|e| e.seq == 1), 1);
        // The slot is reused by a younger entry before cycle 5.
        let (slot2, id2) = put(&mut q, 2, 0);
        assert_eq!(slot2, slot, "single-slot IQ reuses the slot");
        q.release_confirmed(5);
        assert_eq!(q.len(), 1, "the younger entry survives the stale record");
        q.mark_issued(slot2, id2);
        q.mark_confirmed(slot2, id2, 9);
        q.release_confirmed(9);
        assert_eq!(q.len(), 0);
    }
}
