//! The unified instruction queue (IQ).
//!
//! Holds dependency-wait state for up to `capacity` instructions across all
//! threads. Instructions are *retained after issue* until the execute stage
//! confirms they will not replay; the confirmation takes `iq_ex_stages +
//! confirm_feedback` cycles (the load-resolution loop delay) plus an extra
//! cycle to clear the entry — the IQ-pressure effect of paper §2.2.2.

use crate::dyninst::InstId;

/// Wait-state of one IQ entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IqState {
    /// Waiting for operands.
    Waiting,
    /// Issued speculatively; retained in case of replay.
    Issued,
    /// Confirmed by execute; the slot frees at the embedded cycle.
    Confirmed {
        /// Cycle at which the entry's slot is reusable.
        free_at: u64,
    },
}

/// One IQ entry.
#[derive(Debug, Clone, Copy)]
pub struct IqEntry {
    /// Instruction handle.
    pub id: InstId,
    /// Global age (issue priority: oldest first).
    pub seq: u64,
    /// Owning thread.
    pub thread: usize,
    /// Cluster the instruction was slotted to at decode.
    pub cluster: usize,
    /// Wait-state.
    pub state: IqState,
}

/// The unified, clustered instruction queue.
#[derive(Debug)]
pub struct IssueQueue {
    entries: Vec<IqEntry>,
    capacity: usize,
    per_cluster: Vec<u32>,
    // Statistics.
    occupancy_sum: u64,
    issued_occupancy_sum: u64,
    samples: u64,
    peak: usize,
}

impl IssueQueue {
    /// An empty IQ with `capacity` slots serving `clusters` clusters.
    pub fn new(capacity: usize, clusters: usize) -> IssueQueue {
        IssueQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
            per_cluster: vec![0; clusters],
            occupancy_sum: 0,
            issued_occupancy_sum: 0,
            samples: 0,
            peak: 0,
        }
    }

    /// Entries currently slotted to `cluster` (for least-loaded slotting at
    /// decode).
    pub fn cluster_len(&self, cluster: usize) -> u32 {
        self.per_cluster[cluster]
    }

    /// Slots in use (waiting + issued + not-yet-cleared confirmed entries).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free slots available for insertion.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupancy by wait-state: (waiting, issued, confirmed).
    pub fn state_breakdown(&self) -> (usize, usize, usize) {
        let mut b = (0, 0, 0);
        for e in &self.entries {
            match e.state {
                IqState::Waiting => b.0 += 1,
                IqState::Issued => b.1 += 1,
                IqState::Confirmed { .. } => b.2 += 1,
            }
        }
        b
    }

    /// True when the per-cluster tallies match the entries (auditor check).
    pub fn cluster_counts_consistent(&self) -> bool {
        let mut counts = vec![0u32; self.per_cluster.len()];
        for e in &self.entries {
            match counts.get_mut(e.cluster) {
                Some(c) => *c += 1,
                None => return false,
            }
        }
        counts == self.per_cluster
    }

    /// Insert an instruction; returns `false` (and does nothing) when full.
    pub fn insert(&mut self, entry: IqEntry) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.per_cluster[entry.cluster] += 1;
        self.entries.push(entry);
        self.peak = self.peak.max(self.entries.len());
        true
    }

    /// Iterate all entries.
    pub fn iter(&self) -> impl Iterator<Item = &IqEntry> {
        self.entries.iter()
    }

    /// Mutable iteration (the scheduler updates states in place).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut IqEntry> {
        self.entries.iter_mut()
    }

    /// Find the entry for `id`.
    pub fn find_mut(&mut self, id: InstId) -> Option<&mut IqEntry> {
        self.entries.iter_mut().find(|e| e.id == id)
    }

    /// Release confirmed entries whose `free_at` has arrived.
    pub fn release_confirmed(&mut self, now: u64) {
        let per_cluster = &mut self.per_cluster;
        self.entries.retain(|e| {
            let release = matches!(e.state, IqState::Confirmed { free_at } if free_at <= now);
            if release {
                per_cluster[e.cluster] -= 1;
            }
            !release
        });
    }

    /// Remove entries selected by `kill` (squash). Returns the removed
    /// entries (for useless-work accounting).
    pub fn squash(&mut self, mut kill: impl FnMut(&IqEntry) -> bool) -> Vec<IqEntry> {
        let mut removed = Vec::new();
        let per_cluster = &mut self.per_cluster;
        self.entries.retain(|e| {
            if kill(e) {
                per_cluster[e.cluster] -= 1;
                removed.push(*e);
                false
            } else {
                true
            }
        });
        removed
    }

    /// Record one cycle's occupancy statistics.
    pub fn sample_occupancy(&mut self) {
        self.samples += 1;
        self.occupancy_sum += self.entries.len() as u64;
        self.issued_occupancy_sum += self
            .entries
            .iter()
            .filter(|e| !matches!(e.state, IqState::Waiting))
            .count() as u64;
    }

    /// (mean occupancy, mean post-issue occupancy, peak) over the sampled
    /// cycles.
    pub fn occupancy_stats(&self) -> (f64, f64, usize) {
        if self.samples == 0 {
            return (0.0, 0.0, self.peak);
        }
        (
            self.occupancy_sum as f64 / self.samples as f64,
            self.issued_occupancy_sum as f64 / self.samples as f64,
            self.peak,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, cluster: usize) -> IqEntry {
        IqEntry {
            id: InstId {
                slot: seq as u32,
                gen: 0,
            },
            seq,
            thread: 0,
            cluster,
            state: IqState::Waiting,
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let mut q = IssueQueue::new(2, 4);
        assert!(q.insert(entry(1, 0)));
        assert!(q.insert(entry(2, 1)));
        assert!(!q.insert(entry(3, 2)), "full IQ rejects insertion");
        assert_eq!(q.len(), 2);
        assert_eq!(q.free_slots(), 0);
    }

    #[test]
    fn confirmed_entries_release_on_time() {
        let mut q = IssueQueue::new(4, 4);
        q.insert(entry(1, 0));
        q.find_mut(InstId { slot: 1, gen: 0 }).unwrap().state = IqState::Confirmed { free_at: 10 };
        q.release_confirmed(9);
        assert_eq!(q.len(), 1, "not yet");
        q.release_confirmed(10);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn squash_removes_matching() {
        let mut q = IssueQueue::new(8, 4);
        for s in 1..=5 {
            q.insert(entry(s, 0));
        }
        let killed = q.squash(|e| e.seq > 3);
        assert_eq!(killed.len(), 2);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn occupancy_sampling() {
        let mut q = IssueQueue::new(8, 4);
        q.insert(entry(1, 0));
        q.insert(entry(2, 0));
        q.find_mut(InstId { slot: 2, gen: 0 }).unwrap().state = IqState::Issued;
        q.sample_occupancy();
        let (mean, issued_mean, peak) = q.occupancy_stats();
        assert_eq!(mean, 2.0);
        assert_eq!(issued_mean, 1.0);
        assert_eq!(peak, 2);
    }
}
