//! The unified instruction queue (IQ).
//!
//! Holds dependency-wait state for up to `capacity` instructions across all
//! threads. Instructions are *retained after issue* until the execute stage
//! confirms they will not replay; the confirmation takes `iq_ex_stages +
//! confirm_feedback` cycles (the load-resolution loop delay) plus an extra
//! cycle to clear the entry — the IQ-pressure effect of paper §2.2.2.
//!
//! # Organization
//!
//! Entries live in a fixed slot arena with a free-list, so an entry's slot
//! number is stable for its whole IQ residency and the machine can reach
//! it in O(1) through the `iq_slot` hint stored on the dynamic
//! instruction. Two side structures keep the per-cycle scans off the
//! arena:
//!
//! - per-cluster *waiting lists* (slot indices, age-sorted by `seq`) — the
//!   issue stage walks only waiting entries, oldest first, instead of
//!   rescanning every slot;
//! - a FIFO *release queue* of confirmed entries — confirmation delay is a
//!   machine constant, so `free_at` values are confirmed in nondecreasing
//!   order and releasing due entries only inspects the queue front.
//!
//! Squashes clear slots in place; stale release-queue records are
//! recognized (and skipped) by the entry's unique `seq`. Steady-state
//! operation allocates nothing: the arena, free-list, waiting lists and
//! release queue all retain their high-water capacity.

use crate::dyninst::InstId;
use std::collections::VecDeque;

/// Wait-state of one IQ entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IqState {
    /// Waiting for operands.
    Waiting,
    /// Issued speculatively; retained in case of replay.
    Issued,
    /// Confirmed by execute; the slot frees at the embedded cycle.
    Confirmed {
        /// Cycle at which the entry's slot is reusable.
        free_at: u64,
    },
}

/// One IQ entry.
#[derive(Debug, Clone, Copy)]
pub struct IqEntry {
    /// Instruction handle.
    pub id: InstId,
    /// Global age (issue priority: oldest first).
    pub seq: u64,
    /// Owning thread.
    pub thread: usize,
    /// Cluster the instruction was slotted to at decode.
    pub cluster: usize,
    /// Wait-state.
    pub state: IqState,
}

/// Per-slot bookkeeping for the event-driven issue path. Lives beside the
/// arena (not inside [`IqEntry`]) so entry copies stay cheap and the flags
/// survive state transitions that replace the entry.
#[derive(Debug, Clone, Copy, Default)]
struct SlotMeta {
    /// Bumped every time the slot (re-)enters `Waiting` — on insertion and
    /// on replay. External records that name a waiting tenure carry
    /// `(slot, epoch)` and are validated lazily: a mismatch means the
    /// tenure ended (issued, squashed, or a new entry reused the slot) and
    /// the record is stale.
    epoch: u32,
    /// Slot is on its cluster's ready list.
    in_ready: bool,
    /// Slot is parked on its thread's store-wait gate list.
    gated: bool,
}

/// The unified, clustered instruction queue.
#[derive(Debug)]
pub struct IssueQueue {
    /// Slot arena; `None` slots are on the free-list.
    slots: Vec<Option<IqEntry>>,
    /// Per-slot event-driven bookkeeping (epoch + ready/gated flags).
    meta: Vec<SlotMeta>,
    /// Reusable slot indices (LIFO).
    free: Vec<u32>,
    /// Per-cluster waiting entries as `(seq, slot)` pairs, `seq`-ascending.
    /// The seq is denormalized into the list so ordered insertion and
    /// removal probe local memory instead of chasing slot-arena pointers.
    waiting: Vec<Vec<(u64, u32)>>,
    /// Per-cluster *ready* waiting entries (`(seq, slot)`, `seq`-ascending):
    /// the incrementally maintained subset of `waiting` whose operands have
    /// all arrived and whose store-wait gate is clear. Select pops the
    /// front instead of re-evaluating the whole waiting list.
    ready: Vec<Vec<(u64, u32)>>,
    /// Total entries across all ready lists.
    ready_count: usize,
    /// Confirmed entries in confirmation order: `(free_at, slot, seq)`.
    /// `free_at` is nondecreasing (constant confirmation delay).
    release_q: VecDeque<(u64, u32, u64)>,
    per_cluster: Vec<u32>,
    /// Live entries.
    len: usize,
    /// Live entries not in `Waiting` state (issued + confirmed).
    not_waiting: usize,
    // Statistics.
    occupancy_sum: u64,
    issued_occupancy_sum: u64,
    samples: u64,
    peak: usize,
}

impl IssueQueue {
    /// An empty IQ with `capacity` slots serving `clusters` clusters.
    pub fn new(capacity: usize, clusters: usize) -> IssueQueue {
        IssueQueue {
            slots: vec![None; capacity],
            meta: vec![SlotMeta::default(); capacity],
            // Reversed so slot 0 is handed out first.
            free: (0..capacity as u32).rev().collect(),
            waiting: vec![Vec::new(); clusters],
            ready: vec![Vec::new(); clusters],
            ready_count: 0,
            release_q: VecDeque::new(),
            per_cluster: vec![0; clusters],
            len: 0,
            not_waiting: 0,
            occupancy_sum: 0,
            issued_occupancy_sum: 0,
            samples: 0,
            peak: 0,
        }
    }

    /// Entries currently slotted to `cluster` (for least-loaded slotting at
    /// decode).
    #[inline]
    pub fn cluster_len(&self, cluster: usize) -> u32 {
        self.per_cluster[cluster]
    }

    /// Slots in use (waiting + issued + not-yet-cleared confirmed entries).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free slots available for insertion.
    #[inline]
    pub fn free_slots(&self) -> usize {
        self.slots.len() - self.len
    }

    /// Total slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupancy by wait-state: (waiting, issued, confirmed).
    pub fn state_breakdown(&self) -> (usize, usize, usize) {
        let mut b = (0, 0, 0);
        for e in self.iter() {
            match e.state {
                IqState::Waiting => b.0 += 1,
                IqState::Issued => b.1 += 1,
                IqState::Confirmed { .. } => b.2 += 1,
            }
        }
        b
    }

    /// True when the per-cluster tallies match the entries (auditor check).
    pub fn cluster_counts_consistent(&self) -> bool {
        let mut counts = vec![0u32; self.per_cluster.len()];
        for e in self.iter() {
            match counts.get_mut(e.cluster) {
                Some(c) => *c += 1,
                None => return false,
            }
        }
        counts == self.per_cluster
    }

    /// True when every waiting list holds exactly the `Waiting` entries of
    /// its cluster, age-sorted (auditor check).
    pub fn waiting_lists_consistent(&self) -> bool {
        let mut listed = 0;
        for (cluster, list) in self.waiting.iter().enumerate() {
            let mut prev = None;
            for &(seq, slot) in list {
                let Some(e) = self.slots.get(slot as usize).and_then(Option::as_ref) else {
                    return false;
                };
                if e.cluster != cluster || e.state != IqState::Waiting || e.seq != seq {
                    return false;
                }
                if prev.is_some_and(|p| p >= e.seq) {
                    return false;
                }
                prev = Some(e.seq);
                listed += 1;
            }
        }
        listed == self.len - self.not_waiting
    }

    /// True when every ready list holds a subset of its cluster's waiting
    /// entries, age-sorted, with the `in_ready` flags in agreement
    /// (auditor check — structural half of the ready-list invariant; the
    /// machine cross-checks the semantic half against `entry_ready`).
    pub fn ready_lists_consistent(&self) -> bool {
        let mut listed = 0;
        for (cluster, list) in self.ready.iter().enumerate() {
            let mut prev = None;
            for &(seq, slot) in list {
                let Some(e) = self.slots.get(slot as usize).and_then(Option::as_ref) else {
                    return false;
                };
                if e.cluster != cluster || e.state != IqState::Waiting || e.seq != seq {
                    return false;
                }
                if !self.meta[slot as usize].in_ready || self.meta[slot as usize].gated {
                    return false;
                }
                if prev.is_some_and(|p| p >= e.seq) {
                    return false;
                }
                prev = Some(e.seq);
                listed += 1;
            }
        }
        if listed != self.ready_count {
            return false;
        }
        // No in_ready flag may be set outside the lists.
        self.meta.iter().filter(|m| m.in_ready).count() == listed
    }

    /// Insert an instruction; returns its slot, or `None` (and does
    /// nothing) when full. The caller stores the slot on the dynamic
    /// instruction (`iq_slot`) for O(1) state transitions.
    pub fn insert(&mut self, entry: IqEntry) -> Option<u32> {
        debug_assert_eq!(entry.state, IqState::Waiting, "insertions start waiting");
        let slot = self.free.pop()?;
        self.per_cluster[entry.cluster] += 1;
        self.len += 1;
        self.peak = self.peak.max(self.len);
        self.waiting_insert(entry.cluster, slot, entry.seq);
        self.slots[slot as usize] = Some(entry);
        self.begin_waiting_tenure(slot);
        Some(slot)
    }

    /// Start a new waiting tenure for `slot`: bump the epoch (invalidating
    /// any outstanding `(slot, epoch)` records for the previous tenure)
    /// and reset the ready/gated flags.
    fn begin_waiting_tenure(&mut self, slot: u32) {
        let m = &mut self.meta[slot as usize];
        m.epoch = m.epoch.wrapping_add(1);
        debug_assert!(!m.in_ready, "ready membership ends with the tenure");
        m.in_ready = false;
        m.gated = false;
    }

    /// The current waiting-tenure epoch of `slot`. Pair with the slot in
    /// external records and validate via
    /// [`IssueQueue::waiting_at_epoch`].
    #[inline]
    pub fn epoch_of(&self, slot: u32) -> u32 {
        self.meta[slot as usize].epoch
    }

    /// The entry at `slot` if it is still in the `Waiting` tenure that
    /// `epoch` was captured from; `None` means the record is stale.
    #[inline]
    pub fn waiting_at_epoch(&self, slot: u32, epoch: u32) -> Option<&IqEntry> {
        if self.meta[slot as usize].epoch != epoch {
            return None;
        }
        self.slots[slot as usize]
            .as_ref()
            .filter(|e| e.state == IqState::Waiting)
    }

    /// True when `slot` is on its cluster's ready list.
    #[inline]
    pub fn in_ready(&self, slot: u32) -> bool {
        self.meta[slot as usize].in_ready
    }

    /// True when `slot` is parked on a store-wait gate list.
    #[inline]
    pub fn is_gated(&self, slot: u32) -> bool {
        self.meta[slot as usize].gated
    }

    /// Mark `slot` as parked on (or released from) a store-wait gate list.
    /// The flag only de-duplicates gate-list membership; staleness is
    /// handled by epoch validation on the list records.
    #[inline]
    pub fn set_gated(&mut self, slot: u32, gated: bool) {
        self.meta[slot as usize].gated = gated;
    }

    /// Put a waiting entry on its cluster's ready list (age-ordered).
    /// No-op if it is already there.
    pub fn ready_push(&mut self, slot: u32) {
        if self.meta[slot as usize].in_ready {
            return;
        }
        // invariant: callers only push live waiting entries.
        let e = self.slots[slot as usize].as_ref().expect("live ready slot");
        debug_assert_eq!(e.state, IqState::Waiting, "only waiting entries ready");
        let (cluster, seq) = (e.cluster, e.seq);
        let list = &mut self.ready[cluster];
        // Readiness usually arrives in age order: youngest-at-the-back is
        // the overwhelmingly common case, so try a plain push first.
        if list.last().is_none_or(|&(s, _)| s < seq) {
            list.push((seq, slot));
        } else {
            let pos = list.partition_point(|&(s, _)| s < seq);
            list.insert(pos, (seq, slot));
        }
        self.meta[slot as usize].in_ready = true;
        self.ready_count += 1;
    }

    /// Drop `slot` (holding `seq`, in `cluster`) from its ready list.
    fn ready_remove(&mut self, cluster: usize, slot: u32, seq: u64) {
        let list = &mut self.ready[cluster];
        let pos = list.partition_point(|&(s, _)| s < seq);
        debug_assert!(
            pos < list.len() && list[pos] == (seq, slot),
            "ready list holds the entry"
        );
        list.remove(pos);
        self.meta[slot as usize].in_ready = false;
        self.ready_count -= 1;
    }

    /// Withdraw `slot` from its ready list if present (a wake-up was
    /// rescinded, or its store-wait gate closed).
    pub fn ready_withdraw(&mut self, slot: u32) {
        if !self.meta[slot as usize].in_ready {
            return;
        }
        // invariant: in_ready entries are live and waiting.
        let e = self.slots[slot as usize].as_ref().expect("live ready slot");
        let (cluster, seq) = (e.cluster, e.seq);
        self.ready_remove(cluster, slot, seq);
    }

    /// The oldest ready entry of `cluster`, if any.
    #[inline]
    pub fn ready_front(&self, cluster: usize) -> Option<&IqEntry> {
        let &(_, slot) = self.ready[cluster].first()?;
        // invariant: ready lists reference live slots only.
        Some(self.slots[slot as usize].as_ref().expect("live ready slot"))
    }

    /// Entries across all ready lists.
    #[inline]
    pub fn ready_total(&self) -> usize {
        self.ready_count
    }

    /// Ready entries of `cluster` as `(slot, entry)` pairs, age-ascending.
    pub fn ready_iter(&self, cluster: usize) -> impl Iterator<Item = (u32, &IqEntry)> {
        self.ready[cluster].iter().map(|&(_, slot)| {
            // invariant: ready lists reference live slots only.
            let e = self.slots[slot as usize].as_ref().expect("live ready slot");
            (slot, e)
        })
    }

    /// Age-ordered insertion into a cluster's waiting list. Insertions
    /// come in program order except for replays, so try the back first.
    fn waiting_insert(&mut self, cluster: usize, slot: u32, seq: u64) {
        let list = &mut self.waiting[cluster];
        if list.last().is_none_or(|&(s, _)| s < seq) {
            list.push((seq, slot));
        } else {
            let pos = list.partition_point(|&(s, _)| s < seq);
            list.insert(pos, (seq, slot));
        }
    }

    /// Remove `slot` (holding `seq`) from a cluster's waiting list.
    fn waiting_remove(&mut self, cluster: usize, slot: u32, seq: u64) {
        let list = &mut self.waiting[cluster];
        let pos = list.partition_point(|&(s, _)| s < seq);
        debug_assert!(
            pos < list.len() && list[pos] == (seq, slot),
            "waiting list holds the entry"
        );
        list.remove(pos);
    }

    /// Waiting entries of `cluster` (age-ascending walk for select).
    #[inline]
    pub fn waiting_len(&self, cluster: usize) -> usize {
        self.waiting[cluster].len()
    }

    /// The `i`-th oldest waiting entry of `cluster`.
    #[inline]
    pub fn waiting_entry(&self, cluster: usize, i: usize) -> &IqEntry {
        let (_, slot) = self.waiting[cluster][i];
        // invariant: waiting lists reference live slots only.
        self.slots[slot as usize]
            .as_ref()
            .expect("live waiting slot")
    }

    /// Entry at `slot` if it is live and holds `id` (the `iq_slot` hint on
    /// a dynamic instruction may be stale after a squash).
    fn entry_at(&mut self, slot: u32, id: InstId) -> Option<&mut IqEntry> {
        self.slots
            .get_mut(slot as usize)?
            .as_mut()
            .filter(|e| e.id == id)
    }

    /// Waiting → Issued (select); drops the entry from its waiting list.
    pub fn mark_issued(&mut self, slot: u32, id: InstId) {
        let Some(e) = self.entry_at(slot, id) else {
            return;
        };
        debug_assert_eq!(e.state, IqState::Waiting, "issue selects waiting entries");
        if e.state != IqState::Waiting {
            return;
        }
        e.state = IqState::Issued;
        let (cluster, seq) = (e.cluster, e.seq);
        self.not_waiting += 1;
        self.waiting_remove(cluster, slot, seq);
        if self.meta[slot as usize].in_ready {
            self.ready_remove(cluster, slot, seq);
        }
        self.meta[slot as usize].gated = false;
    }

    /// Issued → Waiting (replay); the entry rejoins its waiting list in
    /// age order.
    pub fn mark_waiting(&mut self, slot: u32, id: InstId) {
        let Some(e) = self.entry_at(slot, id) else {
            return;
        };
        if e.state != IqState::Issued {
            debug_assert!(
                matches!(e.state, IqState::Waiting),
                "replay only rewinds issued entries"
            );
            return;
        }
        e.state = IqState::Waiting;
        let (cluster, seq) = (e.cluster, e.seq);
        self.not_waiting -= 1;
        self.waiting_insert(cluster, slot, seq);
        self.begin_waiting_tenure(slot);
    }

    /// Issued → Confirmed (execute will not replay); the slot frees at
    /// `free_at`. Confirmation delay is a machine constant, so calls see
    /// nondecreasing `free_at` — the release queue stays sorted.
    pub fn mark_confirmed(&mut self, slot: u32, id: InstId, free_at: u64) {
        let Some(e) = self.entry_at(slot, id) else {
            return;
        };
        debug_assert_eq!(e.state, IqState::Issued, "only issued entries confirm");
        if !matches!(e.state, IqState::Issued) {
            return;
        }
        e.state = IqState::Confirmed { free_at };
        let seq = e.seq;
        debug_assert!(
            self.release_q.back().is_none_or(|&(f, _, _)| f <= free_at),
            "confirmation delay is constant, so free_at must be nondecreasing"
        );
        self.release_q.push_back((free_at, slot, seq));
    }

    /// Iterate all live entries (slot order).
    pub fn iter(&self) -> impl Iterator<Item = &IqEntry> {
        self.slots.iter().flatten()
    }

    /// The `free_at` cycle of the oldest confirmed entry awaiting release
    /// (`None` when the release queue is empty). `free_at` values are
    /// nondecreasing, so this is the earliest cycle a release can change
    /// the queue's occupancy; the quiescence skip must not jump past it.
    /// The front record may be stale (squashed entry) — treating it as a
    /// pending release is conservative, never wrong.
    #[inline]
    pub fn next_release(&self) -> Option<u64> {
        self.release_q.front().map(|&(free_at, _, _)| free_at)
    }

    /// The entry at `slot` if it is live and `Waiting`.
    #[inline]
    pub fn waiting_slot(&self, slot: u32) -> Option<&IqEntry> {
        self.slots[slot as usize]
            .as_ref()
            .filter(|e| e.state == IqState::Waiting)
    }

    /// Release confirmed entries whose `free_at` has arrived.
    pub fn release_confirmed(&mut self, now: u64) {
        while let Some(&(free_at, slot, seq)) = self.release_q.front() {
            if free_at > now {
                break;
            }
            self.release_q.pop_front();
            // A squash may have cleared the slot (and may have refilled it
            // with a younger entry): the unique `seq` disambiguates.
            let live = self.slots[slot as usize]
                .as_ref()
                .is_some_and(|e| e.seq == seq && matches!(e.state, IqState::Confirmed { .. }));
            if !live {
                continue;
            }
            // invariant: `live` above proved the slot occupied.
            let e = self.slots[slot as usize].take().expect("live slot");
            self.per_cluster[e.cluster] -= 1;
            self.len -= 1;
            self.not_waiting -= 1;
            self.free.push(slot);
        }
    }

    /// Remove entries selected by `kill` (squash). Returns how many were
    /// removed (for useless-work accounting).
    pub fn squash(&mut self, mut kill: impl FnMut(&IqEntry) -> bool) -> usize {
        let mut removed = 0;
        for slot in 0..self.slots.len() as u32 {
            let Some(e) = self.slots[slot as usize] else {
                continue;
            };
            if !kill(&e) {
                continue;
            }
            if e.state == IqState::Waiting {
                self.waiting_remove(e.cluster, slot, e.seq);
                if self.meta[slot as usize].in_ready {
                    self.ready_remove(e.cluster, slot, e.seq);
                }
                self.meta[slot as usize].gated = false;
            } else {
                self.not_waiting -= 1;
            }
            // Stale release-queue records are skipped by their seq check.
            // External (slot, epoch) records go stale when the slot's next
            // tenure bumps the epoch.
            self.slots[slot as usize] = None;
            self.per_cluster[e.cluster] -= 1;
            self.len -= 1;
            self.free.push(slot);
            removed += 1;
        }
        removed
    }

    /// Record one cycle's occupancy statistics.
    #[inline]
    pub fn sample_occupancy(&mut self) {
        self.sample_occupancy_n(1);
    }

    /// Record `n` identical cycles of occupancy statistics at once — used
    /// when the quiescence skip jumps the clock over cycles in which the
    /// IQ provably cannot change.
    #[inline]
    pub fn sample_occupancy_n(&mut self, n: u64) {
        self.samples += n;
        self.occupancy_sum += n * self.len as u64;
        self.issued_occupancy_sum += n * self.not_waiting as u64;
    }

    /// (mean occupancy, mean post-issue occupancy, peak) over the sampled
    /// cycles.
    pub fn occupancy_stats(&self) -> (f64, f64, usize) {
        if self.samples == 0 {
            return (0.0, 0.0, self.peak);
        }
        (
            self.occupancy_sum as f64 / self.samples as f64,
            self.issued_occupancy_sum as f64 / self.samples as f64,
            self.peak,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, cluster: usize) -> IqEntry {
        IqEntry {
            id: InstId {
                slot: seq as u32,
                gen: 0,
            },
            seq,
            thread: 0,
            cluster,
            state: IqState::Waiting,
        }
    }

    /// Insert and return the (slot, id) pair for follow-up transitions.
    fn put(q: &mut IssueQueue, seq: u64, cluster: usize) -> (u32, InstId) {
        let e = entry(seq, cluster);
        let slot = q.insert(e).expect("capacity");
        (slot, e.id)
    }

    #[test]
    fn capacity_is_enforced() {
        let mut q = IssueQueue::new(2, 4);
        assert!(q.insert(entry(1, 0)).is_some());
        assert!(q.insert(entry(2, 1)).is_some());
        assert!(q.insert(entry(3, 2)).is_none(), "full IQ rejects insertion");
        assert_eq!(q.len(), 2);
        assert_eq!(q.free_slots(), 0);
        assert!(q.cluster_counts_consistent());
        assert!(q.waiting_lists_consistent());
    }

    #[test]
    fn confirmed_entries_release_on_time() {
        let mut q = IssueQueue::new(4, 4);
        let (slot, id) = put(&mut q, 1, 0);
        q.mark_issued(slot, id);
        q.mark_confirmed(slot, id, 10);
        q.release_confirmed(9);
        assert_eq!(q.len(), 1, "not yet");
        q.release_confirmed(10);
        assert_eq!(q.len(), 0);
        assert_eq!(q.free_slots(), 4);
    }

    #[test]
    fn squash_removes_matching() {
        let mut q = IssueQueue::new(8, 4);
        for s in 1..=5 {
            q.insert(entry(s, 0));
        }
        let killed = q.squash(|e| e.seq > 3);
        assert_eq!(killed, 2);
        assert_eq!(q.len(), 3);
        assert!(q.cluster_counts_consistent());
        assert!(q.waiting_lists_consistent());
    }

    #[test]
    fn occupancy_sampling() {
        let mut q = IssueQueue::new(8, 4);
        put(&mut q, 1, 0);
        let (slot, id) = put(&mut q, 2, 0);
        q.mark_issued(slot, id);
        q.sample_occupancy();
        let (mean, issued_mean, peak) = q.occupancy_stats();
        assert_eq!(mean, 2.0);
        assert_eq!(issued_mean, 1.0);
        assert_eq!(peak, 2);
    }

    #[test]
    fn waiting_lists_stay_age_sorted_across_replay() {
        let mut q = IssueQueue::new(8, 2);
        // Out-of-order insertion (SMT threads interleave seqs).
        let (s3, id3) = put(&mut q, 3, 1);
        let (s1, _id1) = put(&mut q, 1, 1);
        let (_s5, _id5) = put(&mut q, 5, 1);
        assert_eq!(
            (0..q.waiting_len(1))
                .map(|i| q.waiting_entry(1, i).seq)
                .collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        // Issue the oldest two, replay one: it rejoins in age order.
        q.mark_issued(s1, entry(1, 1).id);
        q.mark_issued(s3, id3);
        q.mark_waiting(s3, id3);
        assert_eq!(
            (0..q.waiting_len(1))
                .map(|i| q.waiting_entry(1, i).seq)
                .collect::<Vec<_>>(),
            vec![3, 5]
        );
        assert!(q.waiting_lists_consistent());
    }

    #[test]
    fn ready_lists_track_waiting_subset_in_age_order() {
        let mut q = IssueQueue::new(8, 2);
        let (s3, _) = put(&mut q, 3, 1);
        let (s1, id1) = put(&mut q, 1, 1);
        let (s5, _) = put(&mut q, 5, 1);
        q.ready_push(s5);
        q.ready_push(s1);
        q.ready_push(s1); // duplicate push is a no-op
        assert_eq!(q.ready_total(), 2);
        assert_eq!(q.ready_front(1).map(|e| e.seq), Some(1));
        assert_eq!(
            q.ready_iter(1).map(|(_, e)| e.seq).collect::<Vec<_>>(),
            vec![1, 5]
        );
        assert!(q.ready_lists_consistent());
        // Issuing the front removes it from the ready list; the next
        // oldest ready entry surfaces (s3 was never ready).
        q.mark_issued(s1, id1);
        assert_eq!(q.ready_front(1).map(|e| e.seq), Some(5));
        // A rescinded wake-up withdraws without issuing.
        q.ready_withdraw(s5);
        q.ready_withdraw(s5); // idempotent
        assert_eq!(q.ready_total(), 0);
        assert!(q.ready_front(1).is_none());
        assert!(!q.in_ready(s3) && !q.in_ready(s5));
        assert!(q.ready_lists_consistent());
    }

    #[test]
    fn epochs_invalidate_records_across_tenures() {
        let mut q = IssueQueue::new(1, 1);
        let (slot, id) = put(&mut q, 1, 0);
        let epoch0 = q.epoch_of(slot);
        assert!(q.waiting_at_epoch(slot, epoch0).is_some());
        // Issue ends the tenure; replay starts a new one.
        q.mark_issued(slot, id);
        assert!(q.waiting_at_epoch(slot, epoch0).is_none(), "issued");
        q.mark_waiting(slot, id);
        assert!(
            q.waiting_at_epoch(slot, epoch0).is_none(),
            "replay is a new tenure"
        );
        let epoch1 = q.epoch_of(slot);
        assert_ne!(epoch0, epoch1);
        assert_eq!(q.waiting_at_epoch(slot, epoch1).map(|e| e.seq), Some(1));
        // Squash + slot reuse by a younger entry: old epochs stay stale.
        q.squash(|e| e.seq == 1);
        let (slot2, _) = put(&mut q, 2, 0);
        assert_eq!(slot2, slot);
        assert!(q.waiting_at_epoch(slot, epoch1).is_none());
        assert_eq!(
            q.waiting_at_epoch(slot, q.epoch_of(slot)).map(|e| e.seq),
            Some(2)
        );
    }

    #[test]
    fn squash_clears_ready_and_gate_state() {
        let mut q = IssueQueue::new(8, 1);
        let (s1, _) = put(&mut q, 1, 0);
        let (s2, _) = put(&mut q, 2, 0);
        q.ready_push(s1);
        q.set_gated(s2, true);
        assert_eq!(q.squash(|_| true), 2);
        assert_eq!(q.ready_total(), 0);
        assert!(q.ready_lists_consistent());
        // Reused slots start their tenure with clean flags.
        let (s1b, _) = put(&mut q, 3, 0);
        let (s2b, _) = put(&mut q, 4, 0);
        assert!(!q.in_ready(s1b) && !q.is_gated(s1b));
        assert!(!q.in_ready(s2b) && !q.is_gated(s2b));
    }

    #[test]
    fn batched_occupancy_sampling_matches_repeated_sampling() {
        let mut q = IssueQueue::new(8, 1);
        put(&mut q, 1, 0);
        let (slot, id) = put(&mut q, 2, 0);
        q.mark_issued(slot, id);
        let mut a = IssueQueue::new(8, 1);
        put(&mut a, 1, 0);
        let (slot_a, id_a) = put(&mut a, 2, 0);
        a.mark_issued(slot_a, id_a);
        for _ in 0..7 {
            q.sample_occupancy();
        }
        a.sample_occupancy_n(7);
        assert_eq!(q.occupancy_stats(), a.occupancy_stats());
    }

    #[test]
    fn stale_release_records_are_skipped_after_squash_and_reuse() {
        let mut q = IssueQueue::new(1, 1);
        let (slot, id) = put(&mut q, 1, 0);
        q.mark_issued(slot, id);
        q.mark_confirmed(slot, id, 5);
        // Squash before the release cycle; the record for seq 1 is stale.
        assert_eq!(q.squash(|e| e.seq == 1), 1);
        // The slot is reused by a younger entry before cycle 5.
        let (slot2, id2) = put(&mut q, 2, 0);
        assert_eq!(slot2, slot, "single-slot IQ reuses the slot");
        q.release_confirmed(5);
        assert_eq!(q.len(), 1, "the younger entry survives the stale record");
        q.mark_issued(slot2, id2);
        q.mark_confirmed(slot2, id2, 9);
        q.release_confirmed(9);
        assert_eq!(q.len(), 0);
    }
}
