//! Pipeline tracing in the Kanata log format.
//!
//! [Kanata](https://github.com/shioyadan/Konata) is the de-facto exchange
//! format for out-of-order pipeline viewers: one row per dynamic
//! instruction, stage occupancy over cycles, retirement vs. flush. Enable
//! with `Machine::enable_trace()`, run, then write
//! `Machine::take_trace()` to a `.kanata` file and open it in a viewer.
//!
//! Stages emitted:
//!
//! | tag | meaning |
//! |---|---|
//! | `F`  | fetch / front-end queues |
//! | `Dc` | rename + DEC-IQ transit |
//! | `Q`  | waiting in the instruction queue (re-entered on replay) |
//! | `Is` | issued: IQ-EX transit |
//! | `X`  | executing |
//! | `Cm` | complete, waiting to retire |

use crate::dyninst::InstId;
use looseloops_isa::Inst;
use std::fmt::Write as _;

/// Incremental Kanata log builder.
///
/// Row bookkeeping is a dense vector indexed by the [`InstId`] slot (the
/// slab reuses low slot numbers, so this stays as small as the in-flight
/// window): no hashing on the per-stage hot path and no steady-state
/// allocation once the vector reaches the machine's in-flight high-water
/// mark. Each cell remembers the generation it was claimed by, so stale
/// handles from reused slots are ignored exactly as the old map was keyed.
#[derive(Debug, Default)]
pub struct PipelineTracer {
    buf: String,
    /// `slot → (generation, kanata row)` for live rows.
    rows: Vec<Option<(u32, u64)>>,
    live: usize,
    next_row: u64,
    retire_id: u64,
    last_cycle: u64,
    started: bool,
}

impl PipelineTracer {
    /// An empty trace.
    pub fn new() -> PipelineTracer {
        PipelineTracer::default()
    }

    fn advance(&mut self, cycle: u64) {
        if !self.started {
            self.buf.push_str("Kanata\t0004\n");
            let _ = writeln!(self.buf, "C=\t{cycle}");
            self.last_cycle = cycle;
            self.started = true;
            return;
        }
        if cycle > self.last_cycle {
            let _ = writeln!(self.buf, "C\t{}", cycle - self.last_cycle);
            self.last_cycle = cycle;
        }
    }

    /// Row for a live `id`, if any.
    #[inline]
    fn row_of(&self, id: InstId) -> Option<u64> {
        match self.rows.get(id.slot as usize) {
            Some(&Some((gen, row))) if gen == id.gen => Some(row),
            _ => None,
        }
    }

    /// Remove and return the row for a live `id`, if any.
    #[inline]
    fn take_row(&mut self, id: InstId) -> Option<u64> {
        match self.rows.get_mut(id.slot as usize) {
            Some(cell @ &mut Some((gen, _))) if gen == id.gen => {
                let (_, row) = cell.take().expect("matched Some");
                self.live -= 1;
                Some(row)
            }
            _ => None,
        }
    }

    /// A new dynamic instruction was fetched. The label line is formatted
    /// here, directly into the log buffer — callers pass the raw PC and
    /// instruction, so a tracer-off run (no `PipelineTracer` at all)
    /// structurally cannot spend time formatting labels.
    pub fn fetch(&mut self, cycle: u64, id: InstId, seq: u64, thread: usize, pc: u64, inst: &Inst) {
        self.advance(cycle);
        let row = self.next_row;
        self.next_row += 1;
        let slot = id.slot as usize;
        if self.rows.len() <= slot {
            self.rows.resize(slot + 1, None);
        }
        if self.rows[slot].replace((id.gen, row)).is_none() {
            self.live += 1;
        }
        let _ = writeln!(self.buf, "I\t{row}\t{seq}\t{thread}");
        let _ = writeln!(self.buf, "L\t{row}\t0\t{pc:>6}: {inst}");
        let _ = writeln!(self.buf, "S\t{row}\t0\tF");
    }

    /// The instruction entered a stage.
    pub fn stage(&mut self, cycle: u64, id: InstId, stage: &str) {
        if let Some(row) = self.row_of(id) {
            self.advance(cycle);
            let _ = writeln!(self.buf, "S\t{row}\t0\t{stage}");
        }
    }

    /// The instruction retired.
    pub fn retire(&mut self, cycle: u64, id: InstId) {
        if let Some(row) = self.take_row(id) {
            self.advance(cycle);
            let rid = self.retire_id;
            self.retire_id += 1;
            let _ = writeln!(self.buf, "R\t{row}\t{rid}\t0");
        }
    }

    /// The instruction was squashed.
    pub fn flush(&mut self, cycle: u64, id: InstId) {
        if let Some(row) = self.take_row(id) {
            self.advance(cycle);
            let rid = self.retire_id;
            self.retire_id += 1;
            let _ = writeln!(self.buf, "R\t{row}\t{rid}\t1");
        }
    }

    /// Drain the accumulated log, closing it as a self-contained Kanata
    /// file: still-live rows are flushed as squashed (a viewer treats an
    /// `I` record with no matching `R` as corrupt), and the row/retire-id/
    /// cycle counters reset so a subsequent trace starts fresh instead of
    /// emitting colliding row ids.
    pub fn take(&mut self) -> String {
        let mut live: Vec<(u64, InstId)> = self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(slot, cell)| {
                cell.map(|(gen, row)| {
                    (
                        row,
                        InstId {
                            slot: slot as u32,
                            gen,
                        },
                    )
                })
            })
            .collect();
        live.sort_unstable_by_key(|&(row, _)| row);
        for (_, id) in live {
            self.flush(self.last_cycle, id);
        }
        self.rows.clear();
        self.live = 0;
        self.next_row = 0;
        self.retire_id = 0;
        self.last_cycle = 0;
        self.started = false;
        std::mem::take(&mut self.buf)
    }

    /// Number of live (fetched, not yet retired/flushed) rows.
    pub fn live_rows(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(slot: u32) -> InstId {
        InstId { slot, gen: 0 }
    }

    /// One assembled instruction per mnemonic the tests label rows with.
    fn inst(text: &str) -> Inst {
        let prog = looseloops_isa::asm::assemble(text).expect("valid test assembly");
        prog.insts[0]
    }

    /// The label the tracer writes for (`pc`, `inst`).
    fn label(pc: u64, i: &Inst) -> String {
        format!("{pc:>6}: {i}")
    }

    #[test]
    fn emits_header_and_row_lifecycle() {
        let add = inst("add r1, r2, r3");
        let mut t = PipelineTracer::new();
        t.fetch(10, id(0), 1, 0, 4, &add);
        t.stage(12, id(0), "Dc");
        t.stage(15, id(0), "Q");
        t.stage(16, id(0), "Is");
        t.stage(19, id(0), "X");
        t.retire(21, id(0));
        let log = t.take();
        assert!(log.starts_with("Kanata\t0004\nC=\t10\n"));
        assert!(log.contains("I\t0\t1\t0"));
        assert!(log.contains(&format!("L\t0\t0\t{}", label(4, &add))));
        assert!(log.contains("S\t0\t0\tF"));
        assert!(log.contains("S\t0\t0\tX"));
        assert!(log.contains("R\t0\t0\t0"));
        // Cycle deltas sum to the elapsed time.
        let total: u64 = log
            .lines()
            .filter(|l| l.starts_with("C\t"))
            .map(|l| l[2..].parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn flush_marks_row_squashed() {
        let mut t = PipelineTracer::new();
        t.fetch(0, id(3), 7, 1, 9, &inst("halt"));
        t.flush(4, id(3));
        let log = t.take();
        assert!(log.contains("R\t0\t0\t1"), "flush bit set: {log}");
        assert_eq!(t.live_rows(), 0);
    }

    #[test]
    fn unknown_ids_are_ignored() {
        let mut t = PipelineTracer::new();
        t.fetch(0, id(1), 1, 0, 0, &inst("nop"));
        t.stage(1, id(9), "X"); // never fetched
        t.retire(2, id(9));
        assert_eq!(t.live_rows(), 1);
    }

    #[test]
    fn take_closes_live_rows_and_resets_counters() {
        let mut t = PipelineTracer::new();
        t.fetch(0, id(0), 1, 0, 0, &inst("addi r1, r31, 1"));
        t.retire(3, id(0));
        t.fetch(4, id(1), 2, 0, 1, &inst("subi r1, r1, 1")); // still live at take()
        t.fetch(4, id(2), 3, 0, 2, &inst("halt")); // also live
        let first = t.take();
        // Live rows were flushed as squashed, not dropped.
        assert_eq!(t.live_rows(), 0);
        assert!(
            first.contains("R\t1\t1\t1"),
            "row 1 closed squashed: {first}"
        );
        assert!(
            first.contains("R\t2\t2\t1"),
            "row 2 closed squashed: {first}"
        );

        // A second trace from the same tracer starts a fresh file: its own
        // header, rows renumbered from 0, retire ids from 0.
        t.fetch(9, id(3), 10, 0, 3, &inst("halt"));
        t.retire(11, id(3));
        let second = t.take();
        assert!(
            second.starts_with("Kanata\t0004\nC=\t9\n"),
            "fresh header and epoch: {second}"
        );
        assert!(
            second.contains("I\t0\t10\t0"),
            "rows restart at 0: {second}"
        );
        assert!(
            second.contains("R\t0\t0\t0"),
            "retire ids restart: {second}"
        );
    }

    /// Golden log: the slot-indexed row table must emit byte-for-byte what
    /// the original `HashMap<InstId, row>` implementation produced,
    /// including slot reuse across generations and a stale-handle ignore.
    #[test]
    fn take_output_matches_hashmap_era_golden_log() {
        let addi = inst("addi r1, r31, 1");
        let ldq = inst("ldq r2, 0(r1)");
        let halt = inst("halt");
        let mut t = PipelineTracer::new();
        t.fetch(10, id(0), 1, 0, 0, &addi);
        t.fetch(10, id(1), 2, 1, 1, &ldq);
        t.stage(12, id(0), "Dc");
        t.stage(12, id(1), "Dc");
        t.flush(13, id(1)); // squashed; slot 1 is reused below
        t.stage(14, InstId { slot: 1, gen: 0 }, "X"); // stale handle: ignored
        t.fetch(14, InstId { slot: 1, gen: 1 }, 3, 1, 2, &halt);
        t.retire(15, id(0));
        let log = t.take();
        let expected = format!(
            "Kanata\t0004\n\
             C=\t10\n\
             I\t0\t1\t0\n\
             L\t0\t0\t{l0}\n\
             S\t0\t0\tF\n\
             I\t1\t2\t1\n\
             L\t1\t0\t{l1}\n\
             S\t1\t0\tF\n\
             C\t2\n\
             S\t0\t0\tDc\n\
             S\t1\t0\tDc\n\
             C\t1\n\
             R\t1\t0\t1\n\
             C\t1\n\
             I\t2\t3\t1\n\
             L\t2\t0\t{l2}\n\
             S\t2\t0\tF\n\
             C\t1\n\
             R\t0\t1\t0\n\
             R\t2\t2\t1\n",
            l0 = label(0, &addi),
            l1 = label(1, &ldq),
            l2 = label(2, &halt),
        );
        assert_eq!(log, expected);
    }

    #[test]
    fn same_cycle_events_share_a_delta() {
        let nop = inst("nop");
        let mut t = PipelineTracer::new();
        t.fetch(5, id(0), 1, 0, 0, &nop);
        t.fetch(5, id(1), 2, 0, 1, &nop);
        let log = t.take();
        assert_eq!(log.matches("C\t").count(), 0, "no delta inside one cycle");
    }
}
