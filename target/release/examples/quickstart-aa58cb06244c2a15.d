/root/repo/target/release/examples/quickstart-aa58cb06244c2a15.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-aa58cb06244c2a15: examples/quickstart.rs

examples/quickstart.rs:
