/root/repo/target/release/deps/looseloops_workload-bffc2c53c907a5cf.d: crates/workload/src/lib.rs crates/workload/src/kernels/mod.rs crates/workload/src/kernels/fp.rs crates/workload/src/kernels/int.rs crates/workload/src/profile.rs crates/workload/src/synthetic.rs

/root/repo/target/release/deps/liblooseloops_workload-bffc2c53c907a5cf.rlib: crates/workload/src/lib.rs crates/workload/src/kernels/mod.rs crates/workload/src/kernels/fp.rs crates/workload/src/kernels/int.rs crates/workload/src/profile.rs crates/workload/src/synthetic.rs

/root/repo/target/release/deps/liblooseloops_workload-bffc2c53c907a5cf.rmeta: crates/workload/src/lib.rs crates/workload/src/kernels/mod.rs crates/workload/src/kernels/fp.rs crates/workload/src/kernels/int.rs crates/workload/src/profile.rs crates/workload/src/synthetic.rs

crates/workload/src/lib.rs:
crates/workload/src/kernels/mod.rs:
crates/workload/src/kernels/fp.rs:
crates/workload/src/kernels/int.rs:
crates/workload/src/profile.rs:
crates/workload/src/synthetic.rs:
