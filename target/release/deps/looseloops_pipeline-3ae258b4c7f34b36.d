/root/repo/target/release/deps/looseloops_pipeline-3ae258b4c7f34b36.d: crates/pipeline/src/lib.rs crates/pipeline/src/audit.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/error.rs crates/pipeline/src/faults.rs crates/pipeline/src/iq.rs crates/pipeline/src/lsq.rs crates/pipeline/src/machine.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/release/deps/liblooseloops_pipeline-3ae258b4c7f34b36.rlib: crates/pipeline/src/lib.rs crates/pipeline/src/audit.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/error.rs crates/pipeline/src/faults.rs crates/pipeline/src/iq.rs crates/pipeline/src/lsq.rs crates/pipeline/src/machine.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/release/deps/liblooseloops_pipeline-3ae258b4c7f34b36.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/audit.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/error.rs crates/pipeline/src/faults.rs crates/pipeline/src/iq.rs crates/pipeline/src/lsq.rs crates/pipeline/src/machine.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/audit.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/dyninst.rs:
crates/pipeline/src/error.rs:
crates/pipeline/src/faults.rs:
crates/pipeline/src/iq.rs:
crates/pipeline/src/lsq.rs:
crates/pipeline/src/machine.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
