/root/repo/target/release/deps/looseloops_repro-c4bf037927b6bede.d: src/lib.rs

/root/repo/target/release/deps/liblooseloops_repro-c4bf037927b6bede.rlib: src/lib.rs

/root/repo/target/release/deps/liblooseloops_repro-c4bf037927b6bede.rmeta: src/lib.rs

src/lib.rs:
