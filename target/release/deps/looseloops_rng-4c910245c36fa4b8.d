/root/repo/target/release/deps/looseloops_rng-4c910245c36fa4b8.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/liblooseloops_rng-4c910245c36fa4b8.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/liblooseloops_rng-4c910245c36fa4b8.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
