/root/repo/target/release/deps/looseloops_regs-5d0eff27db9a1ab6.d: crates/regs/src/lib.rs crates/regs/src/crc.rs crates/regs/src/forward.rs crates/regs/src/freelist.rs crates/regs/src/insertion.rs crates/regs/src/physfile.rs crates/regs/src/rename.rs crates/regs/src/rpft.rs

/root/repo/target/release/deps/liblooseloops_regs-5d0eff27db9a1ab6.rlib: crates/regs/src/lib.rs crates/regs/src/crc.rs crates/regs/src/forward.rs crates/regs/src/freelist.rs crates/regs/src/insertion.rs crates/regs/src/physfile.rs crates/regs/src/rename.rs crates/regs/src/rpft.rs

/root/repo/target/release/deps/liblooseloops_regs-5d0eff27db9a1ab6.rmeta: crates/regs/src/lib.rs crates/regs/src/crc.rs crates/regs/src/forward.rs crates/regs/src/freelist.rs crates/regs/src/insertion.rs crates/regs/src/physfile.rs crates/regs/src/rename.rs crates/regs/src/rpft.rs

crates/regs/src/lib.rs:
crates/regs/src/crc.rs:
crates/regs/src/forward.rs:
crates/regs/src/freelist.rs:
crates/regs/src/insertion.rs:
crates/regs/src/physfile.rs:
crates/regs/src/rename.rs:
crates/regs/src/rpft.rs:
