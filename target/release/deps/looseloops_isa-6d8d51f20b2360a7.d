/root/repo/target/release/deps/looseloops_isa-6d8d51f20b2360a7.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/liblooseloops_isa-6d8d51f20b2360a7.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/liblooseloops_isa-6d8d51f20b2360a7.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
