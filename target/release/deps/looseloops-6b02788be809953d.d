/root/repo/target/release/deps/looseloops-6b02788be809953d.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/loops.rs crates/core/src/machines.rs crates/core/src/report.rs crates/core/src/simulator.rs

/root/repo/target/release/deps/liblooseloops-6b02788be809953d.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/loops.rs crates/core/src/machines.rs crates/core/src/report.rs crates/core/src/simulator.rs

/root/repo/target/release/deps/liblooseloops-6b02788be809953d.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/loops.rs crates/core/src/machines.rs crates/core/src/report.rs crates/core/src/simulator.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/loops.rs:
crates/core/src/machines.rs:
crates/core/src/report.rs:
crates/core/src/simulator.rs:
