/root/repo/target/release/deps/looseloops_branch-a805a85a446a2039.d: crates/branch/src/lib.rs crates/branch/src/btb.rs crates/branch/src/direction.rs crates/branch/src/line.rs crates/branch/src/ras.rs

/root/repo/target/release/deps/liblooseloops_branch-a805a85a446a2039.rlib: crates/branch/src/lib.rs crates/branch/src/btb.rs crates/branch/src/direction.rs crates/branch/src/line.rs crates/branch/src/ras.rs

/root/repo/target/release/deps/liblooseloops_branch-a805a85a446a2039.rmeta: crates/branch/src/lib.rs crates/branch/src/btb.rs crates/branch/src/direction.rs crates/branch/src/line.rs crates/branch/src/ras.rs

crates/branch/src/lib.rs:
crates/branch/src/btb.rs:
crates/branch/src/direction.rs:
crates/branch/src/line.rs:
crates/branch/src/ras.rs:
