/root/repo/target/release/deps/looseloops-fdc0a428afd6b1d0.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/config.rs

/root/repo/target/release/deps/looseloops-fdc0a428afd6b1d0: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/config.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/config.rs:
