/root/repo/target/release/deps/looseloops_mem-0aac45ea380ad1c1.d: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/cache.rs crates/mem/src/prefetch.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/release/deps/liblooseloops_mem-0aac45ea380ad1c1.rlib: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/cache.rs crates/mem/src/prefetch.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/release/deps/liblooseloops_mem-0aac45ea380ad1c1.rmeta: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/cache.rs crates/mem/src/prefetch.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/bank.rs:
crates/mem/src/cache.rs:
crates/mem/src/prefetch.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/tlb.rs:
