/root/repo/target/debug/liblooseloops_rng.rlib: /root/repo/crates/rng/src/lib.rs
