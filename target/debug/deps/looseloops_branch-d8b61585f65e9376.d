/root/repo/target/debug/deps/looseloops_branch-d8b61585f65e9376.d: crates/branch/src/lib.rs crates/branch/src/btb.rs crates/branch/src/direction.rs crates/branch/src/line.rs crates/branch/src/ras.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_branch-d8b61585f65e9376.rmeta: crates/branch/src/lib.rs crates/branch/src/btb.rs crates/branch/src/direction.rs crates/branch/src/line.rs crates/branch/src/ras.rs Cargo.toml

crates/branch/src/lib.rs:
crates/branch/src/btb.rs:
crates/branch/src/direction.rs:
crates/branch/src/line.rs:
crates/branch/src/ras.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
