/root/repo/target/debug/deps/ablation_structures-20b9c194b659dc9d.d: crates/bench/benches/ablation_structures.rs Cargo.toml

/root/repo/target/debug/deps/libablation_structures-20b9c194b659dc9d.rmeta: crates/bench/benches/ablation_structures.rs Cargo.toml

crates/bench/benches/ablation_structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
