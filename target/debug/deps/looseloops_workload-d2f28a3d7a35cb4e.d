/root/repo/target/debug/deps/looseloops_workload-d2f28a3d7a35cb4e.d: crates/workload/src/lib.rs crates/workload/src/kernels/mod.rs crates/workload/src/kernels/fp.rs crates/workload/src/kernels/int.rs crates/workload/src/profile.rs crates/workload/src/synthetic.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_workload-d2f28a3d7a35cb4e.rmeta: crates/workload/src/lib.rs crates/workload/src/kernels/mod.rs crates/workload/src/kernels/fp.rs crates/workload/src/kernels/int.rs crates/workload/src/profile.rs crates/workload/src/synthetic.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/kernels/mod.rs:
crates/workload/src/kernels/fp.rs:
crates/workload/src/kernels/int.rs:
crates/workload/src/profile.rs:
crates/workload/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
