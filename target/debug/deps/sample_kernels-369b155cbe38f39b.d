/root/repo/target/debug/deps/sample_kernels-369b155cbe38f39b.d: tests/sample_kernels.rs

/root/repo/target/debug/deps/sample_kernels-369b155cbe38f39b: tests/sample_kernels.rs

tests/sample_kernels.rs:
