/root/repo/target/debug/deps/micro-7e6a8312fa302ba4.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-7e6a8312fa302ba4.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
