/root/repo/target/debug/deps/props-b4e2ffa841ada3bb.d: crates/regs/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-b4e2ffa841ada3bb.rmeta: crates/regs/tests/props.rs Cargo.toml

crates/regs/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
