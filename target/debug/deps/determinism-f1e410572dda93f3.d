/root/repo/target/debug/deps/determinism-f1e410572dda93f3.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-f1e410572dda93f3.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
