/root/repo/target/debug/deps/machine_behavior-95e739e5d0937d3d.d: tests/machine_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libmachine_behavior-95e739e5d0937d3d.rmeta: tests/machine_behavior.rs Cargo.toml

tests/machine_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
