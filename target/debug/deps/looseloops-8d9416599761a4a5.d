/root/repo/target/debug/deps/looseloops-8d9416599761a4a5.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/config.rs

/root/repo/target/debug/deps/looseloops-8d9416599761a4a5: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/config.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/config.rs:
