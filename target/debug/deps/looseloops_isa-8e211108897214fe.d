/root/repo/target/debug/deps/looseloops_isa-8e211108897214fe.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_isa-8e211108897214fe.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
