/root/repo/target/debug/deps/looseloops_branch-622262199826fb5c.d: crates/branch/src/lib.rs crates/branch/src/btb.rs crates/branch/src/direction.rs crates/branch/src/line.rs crates/branch/src/ras.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_branch-622262199826fb5c.rmeta: crates/branch/src/lib.rs crates/branch/src/btb.rs crates/branch/src/direction.rs crates/branch/src/line.rs crates/branch/src/ras.rs Cargo.toml

crates/branch/src/lib.rs:
crates/branch/src/btb.rs:
crates/branch/src/direction.rs:
crates/branch/src/line.rs:
crates/branch/src/ras.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
