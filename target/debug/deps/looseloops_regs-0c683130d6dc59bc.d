/root/repo/target/debug/deps/looseloops_regs-0c683130d6dc59bc.d: crates/regs/src/lib.rs crates/regs/src/crc.rs crates/regs/src/forward.rs crates/regs/src/freelist.rs crates/regs/src/insertion.rs crates/regs/src/physfile.rs crates/regs/src/rename.rs crates/regs/src/rpft.rs

/root/repo/target/debug/deps/liblooseloops_regs-0c683130d6dc59bc.rlib: crates/regs/src/lib.rs crates/regs/src/crc.rs crates/regs/src/forward.rs crates/regs/src/freelist.rs crates/regs/src/insertion.rs crates/regs/src/physfile.rs crates/regs/src/rename.rs crates/regs/src/rpft.rs

/root/repo/target/debug/deps/liblooseloops_regs-0c683130d6dc59bc.rmeta: crates/regs/src/lib.rs crates/regs/src/crc.rs crates/regs/src/forward.rs crates/regs/src/freelist.rs crates/regs/src/insertion.rs crates/regs/src/physfile.rs crates/regs/src/rename.rs crates/regs/src/rpft.rs

crates/regs/src/lib.rs:
crates/regs/src/crc.rs:
crates/regs/src/forward.rs:
crates/regs/src/freelist.rs:
crates/regs/src/insertion.rs:
crates/regs/src/physfile.rs:
crates/regs/src/rename.rs:
crates/regs/src/rpft.rs:
