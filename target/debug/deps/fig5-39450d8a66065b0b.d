/root/repo/target/debug/deps/fig5-39450d8a66065b0b.d: crates/bench/benches/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-39450d8a66065b0b.rmeta: crates/bench/benches/fig5.rs Cargo.toml

crates/bench/benches/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
