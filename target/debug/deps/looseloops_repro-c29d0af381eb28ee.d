/root/repo/target/debug/deps/looseloops_repro-c29d0af381eb28ee.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_repro-c29d0af381eb28ee.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
