/root/repo/target/debug/deps/cli-b8705f8b96cc7dfc.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-b8705f8b96cc7dfc.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_looseloops=placeholder:looseloops
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
