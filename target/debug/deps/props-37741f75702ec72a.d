/root/repo/target/debug/deps/props-37741f75702ec72a.d: crates/isa/tests/props.rs

/root/repo/target/debug/deps/props-37741f75702ec72a: crates/isa/tests/props.rs

crates/isa/tests/props.rs:
