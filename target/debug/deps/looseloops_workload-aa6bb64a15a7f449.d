/root/repo/target/debug/deps/looseloops_workload-aa6bb64a15a7f449.d: crates/workload/src/lib.rs crates/workload/src/kernels/mod.rs crates/workload/src/kernels/fp.rs crates/workload/src/kernels/int.rs crates/workload/src/profile.rs crates/workload/src/synthetic.rs

/root/repo/target/debug/deps/liblooseloops_workload-aa6bb64a15a7f449.rlib: crates/workload/src/lib.rs crates/workload/src/kernels/mod.rs crates/workload/src/kernels/fp.rs crates/workload/src/kernels/int.rs crates/workload/src/profile.rs crates/workload/src/synthetic.rs

/root/repo/target/debug/deps/liblooseloops_workload-aa6bb64a15a7f449.rmeta: crates/workload/src/lib.rs crates/workload/src/kernels/mod.rs crates/workload/src/kernels/fp.rs crates/workload/src/kernels/int.rs crates/workload/src/profile.rs crates/workload/src/synthetic.rs

crates/workload/src/lib.rs:
crates/workload/src/kernels/mod.rs:
crates/workload/src/kernels/fp.rs:
crates/workload/src/kernels/int.rs:
crates/workload/src/profile.rs:
crates/workload/src/synthetic.rs:
