/root/repo/target/debug/deps/calibration-17c9ffa5e3a33488.d: tests/calibration.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration-17c9ffa5e3a33488.rmeta: tests/calibration.rs Cargo.toml

tests/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
