/root/repo/target/debug/deps/looseloops_bench-57c29f23ca07d2ee.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblooseloops_bench-57c29f23ca07d2ee.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblooseloops_bench-57c29f23ca07d2ee.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
