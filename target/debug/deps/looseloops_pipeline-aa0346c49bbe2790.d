/root/repo/target/debug/deps/looseloops_pipeline-aa0346c49bbe2790.d: crates/pipeline/src/lib.rs crates/pipeline/src/audit.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/error.rs crates/pipeline/src/faults.rs crates/pipeline/src/iq.rs crates/pipeline/src/lsq.rs crates/pipeline/src/machine.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_pipeline-aa0346c49bbe2790.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/audit.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/error.rs crates/pipeline/src/faults.rs crates/pipeline/src/iq.rs crates/pipeline/src/lsq.rs crates/pipeline/src/machine.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs Cargo.toml

crates/pipeline/src/lib.rs:
crates/pipeline/src/audit.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/dyninst.rs:
crates/pipeline/src/error.rs:
crates/pipeline/src/faults.rs:
crates/pipeline/src/iq.rs:
crates/pipeline/src/lsq.rs:
crates/pipeline/src/machine.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
