/root/repo/target/debug/deps/props-93ca782ac36c10a4.d: crates/isa/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-93ca782ac36c10a4.rmeta: crates/isa/tests/props.rs Cargo.toml

crates/isa/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
