/root/repo/target/debug/deps/smoke-d2a91a15eee85781.d: crates/pipeline/tests/smoke.rs

/root/repo/target/debug/deps/smoke-d2a91a15eee85781: crates/pipeline/tests/smoke.rs

crates/pipeline/tests/smoke.rs:
