/root/repo/target/debug/deps/fig4-29bfc402c7eb9c3c.d: crates/bench/benches/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-29bfc402c7eb9c3c.rmeta: crates/bench/benches/fig4.rs Cargo.toml

crates/bench/benches/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
