/root/repo/target/debug/deps/looseloops_mem-311a565cbb60ad2d.d: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/cache.rs crates/mem/src/prefetch.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/looseloops_mem-311a565cbb60ad2d: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/cache.rs crates/mem/src/prefetch.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/bank.rs:
crates/mem/src/cache.rs:
crates/mem/src/prefetch.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/tlb.rs:
