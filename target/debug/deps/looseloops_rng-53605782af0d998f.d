/root/repo/target/debug/deps/looseloops_rng-53605782af0d998f.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_rng-53605782af0d998f.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
