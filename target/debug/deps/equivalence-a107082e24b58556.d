/root/repo/target/debug/deps/equivalence-a107082e24b58556.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-a107082e24b58556: tests/equivalence.rs

tests/equivalence.rs:
