/root/repo/target/debug/deps/fig8-878ceeae06ed01e3.d: crates/bench/benches/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-878ceeae06ed01e3.rmeta: crates/bench/benches/fig8.rs Cargo.toml

crates/bench/benches/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
