/root/repo/target/debug/deps/looseloops-072ba20a79b34dc0.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/loops.rs crates/core/src/machines.rs crates/core/src/report.rs crates/core/src/simulator.rs

/root/repo/target/debug/deps/looseloops-072ba20a79b34dc0: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/loops.rs crates/core/src/machines.rs crates/core/src/report.rs crates/core/src/simulator.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/loops.rs:
crates/core/src/machines.rs:
crates/core/src/report.rs:
crates/core/src/simulator.rs:
