/root/repo/target/debug/deps/looseloops_isa-698b6f44d46c3768.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/liblooseloops_isa-698b6f44d46c3768.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/liblooseloops_isa-698b6f44d46c3768.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
