/root/repo/target/debug/deps/looseloops-47fe79e68d4967e4.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/loops.rs crates/core/src/machines.rs crates/core/src/report.rs crates/core/src/simulator.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops-47fe79e68d4967e4.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/loops.rs crates/core/src/machines.rs crates/core/src/report.rs crates/core/src/simulator.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/loops.rs:
crates/core/src/machines.rs:
crates/core/src/report.rs:
crates/core/src/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
