/root/repo/target/debug/deps/looseloops_workload-904a27799e684bc4.d: crates/workload/src/lib.rs crates/workload/src/kernels/mod.rs crates/workload/src/kernels/fp.rs crates/workload/src/kernels/int.rs crates/workload/src/profile.rs crates/workload/src/synthetic.rs

/root/repo/target/debug/deps/looseloops_workload-904a27799e684bc4: crates/workload/src/lib.rs crates/workload/src/kernels/mod.rs crates/workload/src/kernels/fp.rs crates/workload/src/kernels/int.rs crates/workload/src/profile.rs crates/workload/src/synthetic.rs

crates/workload/src/lib.rs:
crates/workload/src/kernels/mod.rs:
crates/workload/src/kernels/fp.rs:
crates/workload/src/kernels/int.rs:
crates/workload/src/profile.rs:
crates/workload/src/synthetic.rs:
