/root/repo/target/debug/deps/looseloops_mem-9d69dc72f11f5bb5.d: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/cache.rs crates/mem/src/prefetch.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/liblooseloops_mem-9d69dc72f11f5bb5.rlib: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/cache.rs crates/mem/src/prefetch.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/liblooseloops_mem-9d69dc72f11f5bb5.rmeta: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/cache.rs crates/mem/src/prefetch.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/bank.rs:
crates/mem/src/cache.rs:
crates/mem/src/prefetch.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/tlb.rs:
