/root/repo/target/debug/deps/sample_kernels-efca975df0ec77fd.d: tests/sample_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libsample_kernels-efca975df0ec77fd.rmeta: tests/sample_kernels.rs Cargo.toml

tests/sample_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
