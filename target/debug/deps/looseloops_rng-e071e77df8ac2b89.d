/root/repo/target/debug/deps/looseloops_rng-e071e77df8ac2b89.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/liblooseloops_rng-e071e77df8ac2b89.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/liblooseloops_rng-e071e77df8ac2b89.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
