/root/repo/target/debug/deps/looseloops_bench-c142219917c1dee1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_bench-c142219917c1dee1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
