/root/repo/target/debug/deps/figures-6f0b3a40a7a2154f.d: tests/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-6f0b3a40a7a2154f.rmeta: tests/figures.rs Cargo.toml

tests/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
