/root/repo/target/debug/deps/looseloops_regs-90ed084b38e43ee1.d: crates/regs/src/lib.rs crates/regs/src/crc.rs crates/regs/src/forward.rs crates/regs/src/freelist.rs crates/regs/src/insertion.rs crates/regs/src/physfile.rs crates/regs/src/rename.rs crates/regs/src/rpft.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_regs-90ed084b38e43ee1.rmeta: crates/regs/src/lib.rs crates/regs/src/crc.rs crates/regs/src/forward.rs crates/regs/src/freelist.rs crates/regs/src/insertion.rs crates/regs/src/physfile.rs crates/regs/src/rename.rs crates/regs/src/rpft.rs Cargo.toml

crates/regs/src/lib.rs:
crates/regs/src/crc.rs:
crates/regs/src/forward.rs:
crates/regs/src/freelist.rs:
crates/regs/src/insertion.rs:
crates/regs/src/physfile.rs:
crates/regs/src/rename.rs:
crates/regs/src/rpft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
