/root/repo/target/debug/deps/looseloops_branch-0e5d6d930f9c16ab.d: crates/branch/src/lib.rs crates/branch/src/btb.rs crates/branch/src/direction.rs crates/branch/src/line.rs crates/branch/src/ras.rs

/root/repo/target/debug/deps/liblooseloops_branch-0e5d6d930f9c16ab.rlib: crates/branch/src/lib.rs crates/branch/src/btb.rs crates/branch/src/direction.rs crates/branch/src/line.rs crates/branch/src/ras.rs

/root/repo/target/debug/deps/liblooseloops_branch-0e5d6d930f9c16ab.rmeta: crates/branch/src/lib.rs crates/branch/src/btb.rs crates/branch/src/direction.rs crates/branch/src/line.rs crates/branch/src/ras.rs

crates/branch/src/lib.rs:
crates/branch/src/btb.rs:
crates/branch/src/direction.rs:
crates/branch/src/line.rs:
crates/branch/src/ras.rs:
