/root/repo/target/debug/deps/looseloops_regs-ee784727f73b7d2d.d: crates/regs/src/lib.rs crates/regs/src/crc.rs crates/regs/src/forward.rs crates/regs/src/freelist.rs crates/regs/src/insertion.rs crates/regs/src/physfile.rs crates/regs/src/rename.rs crates/regs/src/rpft.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_regs-ee784727f73b7d2d.rmeta: crates/regs/src/lib.rs crates/regs/src/crc.rs crates/regs/src/forward.rs crates/regs/src/freelist.rs crates/regs/src/insertion.rs crates/regs/src/physfile.rs crates/regs/src/rename.rs crates/regs/src/rpft.rs Cargo.toml

crates/regs/src/lib.rs:
crates/regs/src/crc.rs:
crates/regs/src/forward.rs:
crates/regs/src/freelist.rs:
crates/regs/src/insertion.rs:
crates/regs/src/physfile.rs:
crates/regs/src/rename.rs:
crates/regs/src/rpft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
