/root/repo/target/debug/deps/looseloops_rng-7087cf0c913be7d9.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_rng-7087cf0c913be7d9.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
