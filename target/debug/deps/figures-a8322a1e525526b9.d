/root/repo/target/debug/deps/figures-a8322a1e525526b9.d: tests/figures.rs

/root/repo/target/debug/deps/figures-a8322a1e525526b9: tests/figures.rs

tests/figures.rs:
