/root/repo/target/debug/deps/fig9-b0897dafd66564c2.d: crates/bench/benches/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-b0897dafd66564c2.rmeta: crates/bench/benches/fig9.rs Cargo.toml

crates/bench/benches/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
