/root/repo/target/debug/deps/determinism-c57ad67c6c696d9f.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-c57ad67c6c696d9f: tests/determinism.rs

tests/determinism.rs:
