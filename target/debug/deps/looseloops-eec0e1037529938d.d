/root/repo/target/debug/deps/looseloops-eec0e1037529938d.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/loops.rs crates/core/src/machines.rs crates/core/src/report.rs crates/core/src/simulator.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops-eec0e1037529938d.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/loops.rs crates/core/src/machines.rs crates/core/src/report.rs crates/core/src/simulator.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/loops.rs:
crates/core/src/machines.rs:
crates/core/src/report.rs:
crates/core/src/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
