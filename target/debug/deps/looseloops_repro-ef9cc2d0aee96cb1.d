/root/repo/target/debug/deps/looseloops_repro-ef9cc2d0aee96cb1.d: src/lib.rs

/root/repo/target/debug/deps/looseloops_repro-ef9cc2d0aee96cb1: src/lib.rs

src/lib.rs:
