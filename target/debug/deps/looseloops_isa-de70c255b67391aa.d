/root/repo/target/debug/deps/looseloops_isa-de70c255b67391aa.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/looseloops_isa-de70c255b67391aa: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
