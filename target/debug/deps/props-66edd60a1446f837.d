/root/repo/target/debug/deps/props-66edd60a1446f837.d: crates/mem/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-66edd60a1446f837.rmeta: crates/mem/tests/props.rs Cargo.toml

crates/mem/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
