/root/repo/target/debug/deps/looseloops_regs-42850472dff04c04.d: crates/regs/src/lib.rs crates/regs/src/crc.rs crates/regs/src/forward.rs crates/regs/src/freelist.rs crates/regs/src/insertion.rs crates/regs/src/physfile.rs crates/regs/src/rename.rs crates/regs/src/rpft.rs

/root/repo/target/debug/deps/looseloops_regs-42850472dff04c04: crates/regs/src/lib.rs crates/regs/src/crc.rs crates/regs/src/forward.rs crates/regs/src/freelist.rs crates/regs/src/insertion.rs crates/regs/src/physfile.rs crates/regs/src/rename.rs crates/regs/src/rpft.rs

crates/regs/src/lib.rs:
crates/regs/src/crc.rs:
crates/regs/src/forward.rs:
crates/regs/src/freelist.rs:
crates/regs/src/insertion.rs:
crates/regs/src/physfile.rs:
crates/regs/src/rename.rs:
crates/regs/src/rpft.rs:
