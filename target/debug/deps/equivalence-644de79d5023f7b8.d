/root/repo/target/debug/deps/equivalence-644de79d5023f7b8.d: tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-644de79d5023f7b8.rmeta: tests/equivalence.rs Cargo.toml

tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
