/root/repo/target/debug/deps/looseloops_repro-fbb511aeb6d7524f.d: src/lib.rs

/root/repo/target/debug/deps/liblooseloops_repro-fbb511aeb6d7524f.rlib: src/lib.rs

/root/repo/target/debug/deps/liblooseloops_repro-fbb511aeb6d7524f.rmeta: src/lib.rs

src/lib.rs:
