/root/repo/target/debug/deps/cli-ce6bfd235efba41c.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-ce6bfd235efba41c: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_looseloops=/root/repo/target/debug/looseloops
