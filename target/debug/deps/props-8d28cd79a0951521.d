/root/repo/target/debug/deps/props-8d28cd79a0951521.d: crates/regs/tests/props.rs

/root/repo/target/debug/deps/props-8d28cd79a0951521: crates/regs/tests/props.rs

crates/regs/tests/props.rs:
