/root/repo/target/debug/deps/ablation_predictor-73a887eb84d8d3be.d: crates/bench/benches/ablation_predictor.rs Cargo.toml

/root/repo/target/debug/deps/libablation_predictor-73a887eb84d8d3be.rmeta: crates/bench/benches/ablation_predictor.rs Cargo.toml

crates/bench/benches/ablation_predictor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
