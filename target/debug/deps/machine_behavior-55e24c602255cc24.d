/root/repo/target/debug/deps/machine_behavior-55e24c602255cc24.d: tests/machine_behavior.rs

/root/repo/target/debug/deps/machine_behavior-55e24c602255cc24: tests/machine_behavior.rs

tests/machine_behavior.rs:
