/root/repo/target/debug/deps/looseloops_pipeline-a45bb3ac37034da7.d: crates/pipeline/src/lib.rs crates/pipeline/src/audit.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/error.rs crates/pipeline/src/faults.rs crates/pipeline/src/iq.rs crates/pipeline/src/lsq.rs crates/pipeline/src/machine.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/debug/deps/looseloops_pipeline-a45bb3ac37034da7: crates/pipeline/src/lib.rs crates/pipeline/src/audit.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/error.rs crates/pipeline/src/faults.rs crates/pipeline/src/iq.rs crates/pipeline/src/lsq.rs crates/pipeline/src/machine.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/audit.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/dyninst.rs:
crates/pipeline/src/error.rs:
crates/pipeline/src/faults.rs:
crates/pipeline/src/iq.rs:
crates/pipeline/src/lsq.rs:
crates/pipeline/src/machine.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
