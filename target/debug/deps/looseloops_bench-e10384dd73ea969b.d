/root/repo/target/debug/deps/looseloops_bench-e10384dd73ea969b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/looseloops_bench-e10384dd73ea969b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
