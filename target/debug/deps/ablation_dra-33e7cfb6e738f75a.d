/root/repo/target/debug/deps/ablation_dra-33e7cfb6e738f75a.d: crates/bench/benches/ablation_dra.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dra-33e7cfb6e738f75a.rmeta: crates/bench/benches/ablation_dra.rs Cargo.toml

crates/bench/benches/ablation_dra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
