/root/repo/target/debug/deps/looseloops_bench-2494c87b6c31ad01.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_bench-2494c87b6c31ad01.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
