/root/repo/target/debug/deps/props-e40528b2ae9407c9.d: crates/mem/tests/props.rs

/root/repo/target/debug/deps/props-e40528b2ae9407c9: crates/mem/tests/props.rs

crates/mem/tests/props.rs:
