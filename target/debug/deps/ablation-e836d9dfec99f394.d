/root/repo/target/debug/deps/ablation-e836d9dfec99f394.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-e836d9dfec99f394.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
