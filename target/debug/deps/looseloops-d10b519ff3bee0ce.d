/root/repo/target/debug/deps/looseloops-d10b519ff3bee0ce.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/config.rs

/root/repo/target/debug/deps/looseloops-d10b519ff3bee0ce: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/config.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/config.rs:
