/root/repo/target/debug/deps/ablation_prefetch-668079408a7db295.d: crates/bench/benches/ablation_prefetch.rs Cargo.toml

/root/repo/target/debug/deps/libablation_prefetch-668079408a7db295.rmeta: crates/bench/benches/ablation_prefetch.rs Cargo.toml

crates/bench/benches/ablation_prefetch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
