/root/repo/target/debug/deps/smoke-6009160c511434c5.d: crates/pipeline/tests/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-6009160c511434c5.rmeta: crates/pipeline/tests/smoke.rs Cargo.toml

crates/pipeline/tests/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
