/root/repo/target/debug/deps/hardening-435b13eee6334c4f.d: crates/pipeline/tests/hardening.rs Cargo.toml

/root/repo/target/debug/deps/libhardening-435b13eee6334c4f.rmeta: crates/pipeline/tests/hardening.rs Cargo.toml

crates/pipeline/tests/hardening.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
