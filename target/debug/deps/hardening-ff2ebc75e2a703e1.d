/root/repo/target/debug/deps/hardening-ff2ebc75e2a703e1.d: crates/pipeline/tests/hardening.rs

/root/repo/target/debug/deps/hardening-ff2ebc75e2a703e1: crates/pipeline/tests/hardening.rs

crates/pipeline/tests/hardening.rs:
