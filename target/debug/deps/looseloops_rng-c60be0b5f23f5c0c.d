/root/repo/target/debug/deps/looseloops_rng-c60be0b5f23f5c0c.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/looseloops_rng-c60be0b5f23f5c0c: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
