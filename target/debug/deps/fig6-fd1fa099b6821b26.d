/root/repo/target/debug/deps/fig6-fd1fa099b6821b26.d: crates/bench/benches/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-fd1fa099b6821b26.rmeta: crates/bench/benches/fig6.rs Cargo.toml

crates/bench/benches/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
