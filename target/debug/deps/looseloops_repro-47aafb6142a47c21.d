/root/repo/target/debug/deps/looseloops_repro-47aafb6142a47c21.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_repro-47aafb6142a47c21.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
