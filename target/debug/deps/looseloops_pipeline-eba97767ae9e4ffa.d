/root/repo/target/debug/deps/looseloops_pipeline-eba97767ae9e4ffa.d: crates/pipeline/src/lib.rs crates/pipeline/src/audit.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/error.rs crates/pipeline/src/faults.rs crates/pipeline/src/iq.rs crates/pipeline/src/lsq.rs crates/pipeline/src/machine.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/debug/deps/liblooseloops_pipeline-eba97767ae9e4ffa.rlib: crates/pipeline/src/lib.rs crates/pipeline/src/audit.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/error.rs crates/pipeline/src/faults.rs crates/pipeline/src/iq.rs crates/pipeline/src/lsq.rs crates/pipeline/src/machine.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/debug/deps/liblooseloops_pipeline-eba97767ae9e4ffa.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/audit.rs crates/pipeline/src/config.rs crates/pipeline/src/dyninst.rs crates/pipeline/src/error.rs crates/pipeline/src/faults.rs crates/pipeline/src/iq.rs crates/pipeline/src/lsq.rs crates/pipeline/src/machine.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/audit.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/dyninst.rs:
crates/pipeline/src/error.rs:
crates/pipeline/src/faults.rs:
crates/pipeline/src/iq.rs:
crates/pipeline/src/lsq.rs:
crates/pipeline/src/machine.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
