/root/repo/target/debug/deps/looseloops_branch-e5259dec867a78e8.d: crates/branch/src/lib.rs crates/branch/src/btb.rs crates/branch/src/direction.rs crates/branch/src/line.rs crates/branch/src/ras.rs

/root/repo/target/debug/deps/looseloops_branch-e5259dec867a78e8: crates/branch/src/lib.rs crates/branch/src/btb.rs crates/branch/src/direction.rs crates/branch/src/line.rs crates/branch/src/ras.rs

crates/branch/src/lib.rs:
crates/branch/src/btb.rs:
crates/branch/src/direction.rs:
crates/branch/src/line.rs:
crates/branch/src/ras.rs:
