/root/repo/target/debug/deps/looseloops-0b7f43308f1af22d.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/config.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops-0b7f43308f1af22d.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/config.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
