/root/repo/target/debug/deps/calibration-1cea95e883ffbd22.d: tests/calibration.rs

/root/repo/target/debug/deps/calibration-1cea95e883ffbd22: tests/calibration.rs

tests/calibration.rs:
