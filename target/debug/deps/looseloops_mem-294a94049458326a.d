/root/repo/target/debug/deps/looseloops_mem-294a94049458326a.d: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/cache.rs crates/mem/src/prefetch.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops_mem-294a94049458326a.rmeta: crates/mem/src/lib.rs crates/mem/src/bank.rs crates/mem/src/cache.rs crates/mem/src/prefetch.rs crates/mem/src/hierarchy.rs crates/mem/src/tlb.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/bank.rs:
crates/mem/src/cache.rs:
crates/mem/src/prefetch.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/tlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
