/root/repo/target/debug/deps/looseloops-a3852fbeabce293d.d: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/loops.rs crates/core/src/machines.rs crates/core/src/report.rs crates/core/src/simulator.rs

/root/repo/target/debug/deps/liblooseloops-a3852fbeabce293d.rlib: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/loops.rs crates/core/src/machines.rs crates/core/src/report.rs crates/core/src/simulator.rs

/root/repo/target/debug/deps/liblooseloops-a3852fbeabce293d.rmeta: crates/core/src/lib.rs crates/core/src/experiments.rs crates/core/src/loops.rs crates/core/src/machines.rs crates/core/src/report.rs crates/core/src/simulator.rs

crates/core/src/lib.rs:
crates/core/src/experiments.rs:
crates/core/src/loops.rs:
crates/core/src/machines.rs:
crates/core/src/report.rs:
crates/core/src/simulator.rs:
