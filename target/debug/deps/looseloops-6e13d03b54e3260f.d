/root/repo/target/debug/deps/looseloops-6e13d03b54e3260f.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/config.rs Cargo.toml

/root/repo/target/debug/deps/liblooseloops-6e13d03b54e3260f.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/config.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
