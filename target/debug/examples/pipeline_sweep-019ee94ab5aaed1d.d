/root/repo/target/debug/examples/pipeline_sweep-019ee94ab5aaed1d.d: examples/pipeline_sweep.rs

/root/repo/target/debug/examples/pipeline_sweep-019ee94ab5aaed1d: examples/pipeline_sweep.rs

examples/pipeline_sweep.rs:
