/root/repo/target/debug/examples/loop_anatomy-bf3c63d3293bd908.d: examples/loop_anatomy.rs Cargo.toml

/root/repo/target/debug/examples/libloop_anatomy-bf3c63d3293bd908.rmeta: examples/loop_anatomy.rs Cargo.toml

examples/loop_anatomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
