/root/repo/target/debug/examples/smt_throughput-b436384d6429c7dd.d: examples/smt_throughput.rs

/root/repo/target/debug/examples/smt_throughput-b436384d6429c7dd: examples/smt_throughput.rs

examples/smt_throughput.rs:
