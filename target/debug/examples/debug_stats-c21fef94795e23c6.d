/root/repo/target/debug/examples/debug_stats-c21fef94795e23c6.d: examples/debug_stats.rs Cargo.toml

/root/repo/target/debug/examples/libdebug_stats-c21fef94795e23c6.rmeta: examples/debug_stats.rs Cargo.toml

examples/debug_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
