/root/repo/target/debug/examples/quickstart-359ce1e4da803230.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-359ce1e4da803230: examples/quickstart.rs

examples/quickstart.rs:
