/root/repo/target/debug/examples/pipeline_trace-5933491497dcca14.d: examples/pipeline_trace.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_trace-5933491497dcca14.rmeta: examples/pipeline_trace.rs Cargo.toml

examples/pipeline_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
