/root/repo/target/debug/examples/pipeline_sweep-eddf70193d1a954d.d: examples/pipeline_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_sweep-eddf70193d1a954d.rmeta: examples/pipeline_sweep.rs Cargo.toml

examples/pipeline_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
