/root/repo/target/debug/examples/loop_anatomy-904b764f2efc32d3.d: examples/loop_anatomy.rs

/root/repo/target/debug/examples/loop_anatomy-904b764f2efc32d3: examples/loop_anatomy.rs

examples/loop_anatomy.rs:
