/root/repo/target/debug/examples/dra_comparison-5df024a29d338026.d: examples/dra_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libdra_comparison-5df024a29d338026.rmeta: examples/dra_comparison.rs Cargo.toml

examples/dra_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
