/root/repo/target/debug/examples/quickstart-b5e2c9df3eda8f5b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b5e2c9df3eda8f5b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
