/root/repo/target/debug/examples/smt_throughput-a09005e6e38d9e58.d: examples/smt_throughput.rs Cargo.toml

/root/repo/target/debug/examples/libsmt_throughput-a09005e6e38d9e58.rmeta: examples/smt_throughput.rs Cargo.toml

examples/smt_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
