/root/repo/target/debug/examples/dra_comparison-20a915067a0af40a.d: examples/dra_comparison.rs

/root/repo/target/debug/examples/dra_comparison-20a915067a0af40a: examples/dra_comparison.rs

examples/dra_comparison.rs:
