/root/repo/target/debug/examples/pipeline_trace-b088fd3b54c47fca.d: examples/pipeline_trace.rs

/root/repo/target/debug/examples/pipeline_trace-b088fd3b54c47fca: examples/pipeline_trace.rs

examples/pipeline_trace.rs:
