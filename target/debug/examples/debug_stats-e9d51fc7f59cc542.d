/root/repo/target/debug/examples/debug_stats-e9d51fc7f59cc542.d: examples/debug_stats.rs

/root/repo/target/debug/examples/debug_stats-e9d51fc7f59cc542: examples/debug_stats.rs

examples/debug_stats.rs:
