//! Umbrella crate for the *Loose Loops Sink Chips* reproduction.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! can exercise the whole workspace through a single dependency. All real
//! functionality lives in the member crates and is re-exported here:
//!
//! - [`looseloops`] — loop analysis, simulator front-door, DRA ([`core`]).
//! - [`isa`] — the mini Alpha-like ISA, assembler and functional interpreter.
//! - [`mem`] — caches, TLB, main memory.
//! - [`branch`] — branch predictors.
//! - [`regs`] — rename machinery, register file, forwarding buffer, CRC/RPFT.
//! - [`pipeline`] — the cycle-level out-of-order SMT pipeline model.
//! - [`workload`] — Spec95-proxy kernels and synthetic workloads.

pub use looseloops as core;
pub use looseloops_branch as branch;
pub use looseloops_isa as isa;
pub use looseloops_mem as mem;
pub use looseloops_pipeline as pipeline;
pub use looseloops_regs as regs;
pub use looseloops_workload as workload;
