//! Record a Kanata pipeline trace of a small kernel and write it to
//! `trace.kanata` — open it in a Konata-style viewer to watch the
//! loose loops at work (branch squashes, load-shadow replays).
//!
//! ```text
//! cargo run --release --example pipeline_trace [out.kanata]
//! ```

use looseloops_repro::core::{Machine, PipelineConfig};
use looseloops_repro::isa::asm;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.kanata".into());
    let prog = asm::assemble(
        "
        .data 0x10000, 3, 1, 4, 1, 5, 9, 2, 6
            addi r1, r31, 0x10000
            addi r2, r31, 64
        top:
            andi r3, r2, 0x38
            add  r4, r1, r3
            ldq  r5, 0(r4)
            add  r6, r6, r5
            andi r7, r5, 1
            beq  r7, even
            addi r8, r8, 1
        even:
            subi r2, r2, 1
            bne  r2, top
            halt
    ",
    )
    .expect("valid assembly");

    let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
    m.enable_trace();
    m.enable_verification();
    m.run(u64::MAX, 1_000_000).unwrap();
    assert!(m.is_done());
    let log = m.take_trace();
    std::fs::write(&out, &log).expect("write trace");
    println!(
        "wrote {} ({} instructions, {} cycles) — open it in a Kanata/Konata viewer",
        out,
        m.stats().total_retired(),
        m.stats().cycles
    );
}
