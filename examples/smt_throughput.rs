//! SMT throughput: run the paper's three two-thread pairings and compare
//! combined throughput against each member running alone — the paper's
//! observation that multi-threading dampens loose-loop losses because the
//! other thread keeps doing useful work during a recovery.
//!
//! ```text
//! cargo run --release --example smt_throughput [instructions]
//! ```

use looseloops_repro::core::{run_benchmark, run_pair, Benchmark, PipelineConfig, RunBudget};

fn main() {
    let measure: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let budget = RunBudget {
        warmup: measure / 2,
        measure,
        max_cycles: 100_000_000,
    };
    let single = PipelineConfig::base();
    let smt = PipelineConfig::base().smt(2);

    println!(
        "{:>20} {:>10} {:>10} {:>12} {:>12}",
        "pair", "ipc(a)", "ipc(b)", "ipc(a+b|smt)", "smt gain"
    );
    for pair in Benchmark::pairs() {
        let a = run_benchmark(&single, pair.0, budget).ipc();
        let b = run_benchmark(&single, pair.1, budget).ipc();
        let both = run_pair(&smt, pair, budget);
        let combined = both.ipc();
        // Throughput gain over time-slicing the two programs on one thread
        // (harmonic-mean baseline).
        let timeslice = 2.0 / (1.0 / a + 1.0 / b);
        println!(
            "{:>20} {:>10.3} {:>10.3} {:>12.3} {:>11.1}%",
            pair.name(),
            a,
            b,
            combined,
            (combined / timeslice - 1.0) * 100.0
        );
    }
    println!();
    println!("SMT shares the pipeline's loose-loop recovery bubbles between");
    println!("threads: while one thread squashes, the other issues.");
}
