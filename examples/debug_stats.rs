//! Development diagnostic: dump full statistics for one workload under a
//! set of configurations. Usage: `cargo run --release --example debug_stats [bench]`.

use looseloops_repro::core::{run_benchmark, Benchmark, PipelineConfig, RunBudget};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "m88ksim".into());
    let bench = Benchmark::all()
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let budget = RunBudget {
        warmup: 20_000,
        measure: 100_000,
        max_cycles: 50_000_000,
    };
    for (label, cfg) in [
        ("base 5_5 rf3".to_string(), PipelineConfig::base_for_rf(3)),
        ("dra  5_3 rf3".to_string(), PipelineConfig::dra_for_rf(3)),
        ("base 5_9 rf7".to_string(), PipelineConfig::base_for_rf(7)),
        ("dra  9_3 rf7".to_string(), PipelineConfig::dra_for_rf(7)),
    ] {
        let s = run_benchmark(&cfg, bench, budget);
        println!("--- {name} {label} ---");
        println!(
            "ipc={:.3} cycles={} retired={} fetched={} squashed={} (after-issue {})",
            s.ipc(),
            s.cycles,
            s.total_retired(),
            s.fetched,
            s.squashed,
            s.squashed_after_issue
        );
        println!(
            "branches={} mispred={} ({:.2}%) target_mis={} loads={} l1miss={:.2}% replays: load={} shadow={} operand={}",
            s.branches,
            s.branch_mispredicts,
            s.branch_mispredict_rate() * 100.0,
            s.target_mispredicts,
            s.loads,
            s.load_miss_rate() * 100.0,
            s.load_replays,
            s.shadow_replays,
            s.operand_replays
        );
        println!(
            "operand srcs [preread fwd crc rf miss] = {:?} miss_rate={:.3}% opmiss_stall={} rename_stall={}",
            s.operand_sources,
            s.operand_miss_rate() * 100.0,
            s.operand_miss_stall_cycles,
            s.rename_stall_cycles
        );
        println!(
            "iq: mean={:.1} post_issue={:.1} peak={} traps: mem={} tlb={} line_pred={:?}",
            s.iq_occupancy_mean,
            s.iq_post_issue_mean,
            s.iq_peak,
            s.mem_order_traps,
            s.tlb_traps,
            s.line_pred
        );
        println!("mem: {:?}", s.mem);
        println!(
            "load latency p50/p90/p99: {:?}/{:?}/{:?}",
            s.load_latency_percentile(0.50),
            s.load_latency_percentile(0.90),
            s.load_latency_percentile(0.99)
        );
    }
}
