; Word-granular memcpy of 64 words, then checksum the copy.
; Run:  looseloops asm examples/kernels/memcpy.s --run
.entry start
.data 0x30000, 0xdead, 0xbeef, 0xcafe, 0xf00d
start:
    addi r1, r31, 0x30000    ; src
    addi r2, r31, 0x40000    ; dst
    addi r3, r31, 64         ; words
copy:
    ldq  r4, 0(r1)
    stq  r4, 0(r2)
    addi r1, r1, 8
    addi r2, r2, 8
    subi r3, r3, 1
    bne  r3, copy
    ; checksum the destination
    addi r2, r31, 0x40000
    addi r3, r31, 64
sum:
    ldq  r4, 0(r2)
    add  r5, r5, r4
    addi r2, r2, 8
    subi r3, r3, 1
    bne  r3, sum
    halt
