; Dot product of two 16-element vectors.
; Run:  looseloops asm examples/kernels/dotproduct.s --run
.data 0x10000, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
.data 0x20000, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1
    addi r1, r31, 0x10000    ; a
    addi r2, r31, 0x20000    ; b
    addi r3, r31, 16         ; n
loop:
    ldq  r4, 0(r1)
    ldq  r5, 0(r2)
    mul  r6, r4, r5
    add  r7, r7, r6          ; sum
    addi r1, r1, 8
    addi r2, r2, 8
    subi r3, r3, 1
    bne  r3, loop
    stq  r7, 0(r1)
    halt
