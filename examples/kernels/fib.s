; Iterative Fibonacci: r3 = fib(30).
; Run:  looseloops asm examples/kernels/fib.s --run
    addi r1, r31, 0          ; fib(0)
    addi r2, r31, 1          ; fib(1)
    addi r4, r31, 29         ; iterations
loop:
    add  r3, r1, r2
    add  r1, r2, r31
    add  r2, r3, r31
    subi r4, r4, 1
    bne  r4, loop
    halt
