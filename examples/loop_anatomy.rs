//! Print the micro-architectural loop inventory (the paper's Figure 1/2
//! taxonomy) for the base machine and for a DRA machine, showing how the
//! DRA shrinks the load-resolution loop and introduces the
//! operand-resolution loop.
//!
//! ```text
//! cargo run --release --example loop_anatomy
//! ```

use looseloops_repro::core::{loop_inventory, PipelineConfig};

fn print_inventory(title: &str, cfg: &PipelineConfig) {
    println!("== {title} ==");
    println!(
        "   (DEC-IQ={} IQ-EX={} RF read={} cycles)",
        cfg.dec_iq_stages, cfg.iq_ex_stages, cfg.rf_read_latency
    );
    for l in loop_inventory(cfg) {
        println!("   {l}");
    }
    println!();
}

fn main() {
    let base = PipelineConfig::base();
    print_inventory("base machine (paper section 2)", &base);

    for rf in [3, 5, 7] {
        let dra = PipelineConfig::dra_for_rf(rf);
        print_inventory(&format!("DRA machine, {rf}-cycle register file"), &dra);
    }

    // The headline numbers of the paper's loop arithmetic.
    let loops = loop_inventory(&base);
    let load = loops.iter().find(|l| l.name == "load resolution").unwrap();
    println!(
        "paper check: base load-resolution loop delay = {} (the paper's 8 cycles)",
        load.loop_delay()
    );
    let dra = loop_inventory(&PipelineConfig::dra_for_rf(3));
    let load_dra = dra.iter().find(|l| l.name == "load resolution").unwrap();
    let op = dra.iter().find(|l| l.name == "operand resolution").unwrap();
    println!(
        "under the DRA it shrinks to {} — at the cost of a new loose loop (operand resolution, delay {})",
        load_dra.loop_delay(),
        op.loop_delay()
    );
}
