//! Base machine vs the Distributed Register Algorithm on one workload:
//! speedup, operand-source breakdown (Figure 9 flavour), and the
//! operand-resolution-loop statistics.
//!
//! ```text
//! cargo run --release --example dra_comparison [benchmark] [instructions]
//! ```

use looseloops_repro::core::{run_benchmark, Benchmark, PipelineConfig, RunBudget};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "swim".into());
    let bench = Benchmark::all()
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}` (try swim, apsi, go, …)"));
    let measure: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let budget = RunBudget {
        warmup: measure / 2,
        measure,
        max_cycles: 100_000_000,
    };

    println!("workload: {bench}\n");
    println!(
        "{:>24} {:>10} {:>10} {:>10} {:>10}",
        "", "ipc", "op-miss%", "replays", "pipe(DEC->EX)"
    );
    for rf in [3u32, 5, 7] {
        let base_cfg = PipelineConfig::base_for_rf(rf);
        let dra_cfg = PipelineConfig::dra_for_rf(rf);
        let base = run_benchmark(&base_cfg, bench, budget);
        let dra = run_benchmark(&dra_cfg, bench, budget);
        println!(
            "{:>24} {:>10.3} {:>10.3} {:>10} {:>10}",
            format!("base 5_{} (rf={rf})", base_cfg.iq_ex_stages),
            base.ipc(),
            0.0,
            base.load_replays,
            base_cfg.dec_to_ex(),
        );
        println!(
            "{:>24} {:>10.3} {:>10.3} {:>10} {:>10}",
            format!("DRA {}_3 (rf={rf})", dra_cfg.dec_iq_stages),
            dra.ipc(),
            dra.operand_miss_rate() * 100.0,
            dra.load_replays + dra.operand_replays,
            dra_cfg.dec_to_ex(),
        );
        let f = dra.operand_source_fractions();
        println!(
            "{:>24} pre-read {:.1}%  forward {:.1}%  CRC {:.1}%  miss {:.2}%   speedup {:.3}",
            "",
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0,
            f[4] * 100.0,
            dra.ipc() / base.ipc(),
        );
        println!();
    }
}
