//! A miniature of the paper's Figure 4/5 studies: sweep the DEC-IQ/IQ-EX
//! latencies on a couple of workloads and print the speedups.
//!
//! ```text
//! cargo run --release --example pipeline_sweep [instructions]
//! ```

use looseloops_repro::core::{run_benchmark, Benchmark, PipelineConfig, RunBudget};

fn main() {
    let measure: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let budget = RunBudget { warmup: measure / 4, measure, max_cycles: 100_000_000 };
    let workloads = [Benchmark::Go, Benchmark::Swim, Benchmark::Hydro2d];

    println!("-- lengthening the pipe (Figure 4 flavour) --");
    println!("{:>10} {:>8} {:>8} {:>8} {:>8}", "", "3_3", "5_5", "7_7", "9_9");
    for b in workloads {
        let mut row = format!("{:>10}", b.name());
        let baseline =
            run_benchmark(&PipelineConfig::base_with_latencies(3, 3), b, budget).ipc();
        for (x, y) in [(3, 3), (5, 5), (7, 7), (9, 9)] {
            let ipc = run_benchmark(&PipelineConfig::base_with_latencies(x, y), b, budget).ipc();
            row.push_str(&format!(" {:>8.3}", ipc / baseline));
        }
        println!("{row}");
    }

    println!();
    println!("-- fixed 12-cycle DEC->EX, shifting stages out of IQ-EX (Figure 5 flavour) --");
    println!("{:>10} {:>8} {:>8} {:>8} {:>8}", "", "3_9", "5_7", "7_5", "9_3");
    for b in workloads {
        let mut row = format!("{:>10}", b.name());
        let baseline =
            run_benchmark(&PipelineConfig::base_with_latencies(3, 9), b, budget).ipc();
        for (x, y) in [(3, 9), (5, 7), (7, 5), (9, 3)] {
            let ipc = run_benchmark(&PipelineConfig::base_with_latencies(x, y), b, budget).ipc();
            row.push_str(&format!(" {:>8.3}", ipc / baseline));
        }
        println!("{row}");
    }
    println!();
    println!("go is limited by the branch-resolution loop (whole-pipe length),");
    println!("swim by the load-resolution loop (IQ-EX only), and hydro2d by");
    println!("main memory (neither) — the paper's 'not all pipelines are");
    println!("created equal' result.");
}
