//! A miniature of the paper's Figure 4/5 studies: sweep the DEC-IQ/IQ-EX
//! latencies on a couple of workloads and print relative IPC against the
//! base 3_3 machine.
//!
//! The grids run on the [`SweepEngine`]: all `configs × workloads` points
//! execute on a worker pool (`LOOSELOOPS_JOBS` or all cores), and the
//! 3_3 baseline both tables normalize against is simulated exactly once —
//! the second sweep takes it from the engine's memo cache.
//!
//! ```text
//! cargo run --release --example pipeline_sweep [instructions]
//! ```

use looseloops_repro::core::{Benchmark, PipelineConfig, RunBudget, SweepEngine, Workload};

fn print_sweep(
    sweep: &SweepEngine,
    title: &str,
    latencies: [(u32, u32); 4],
    workloads: &[Workload],
    budget: RunBudget,
) {
    println!("-- {title} --");
    let mut header = format!("{:>10}", "");
    for (x, y) in latencies {
        header.push_str(&format!(" {:>8}", format!("{x}_{y}")));
    }
    println!("{header}");
    // First config is the 3_3 base machine every table normalizes against;
    // the engine dedups it when it also appears in `latencies`, and the
    // second table gets it from the memo cache.
    let configs: Vec<PipelineConfig> = std::iter::once((3, 3))
        .chain(latencies)
        .map(|(x, y)| PipelineConfig::base_with_latencies(x, y))
        .collect();
    let grid = sweep.run_grid(&configs, workloads, budget);
    for (w, workload) in workloads.iter().enumerate() {
        let baseline = grid[0][w].ipc();
        let mut row = format!("{:>10}", workload.name());
        for cfg_row in &grid[1..] {
            row.push_str(&format!(" {:>8.3}", cfg_row[w].ipc() / baseline));
        }
        println!("{row}");
    }
}

fn main() {
    let measure: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let budget = RunBudget {
        warmup: measure / 4,
        measure,
        max_cycles: 100_000_000,
    };
    let workloads: Vec<Workload> = [Benchmark::Go, Benchmark::Swim, Benchmark::Hydro2d]
        .into_iter()
        .map(Workload::Single)
        .collect();
    let sweep = SweepEngine::from_env();

    print_sweep(
        &sweep,
        "lengthening the pipe (Figure 4 flavour)",
        [(3, 3), (5, 5), (7, 7), (9, 9)],
        &workloads,
        budget,
    );
    println!();
    print_sweep(
        &sweep,
        "fixed 12-cycle DEC->EX, shifting stages out of IQ-EX (Figure 5 flavour)",
        [(3, 9), (5, 7), (7, 5), (9, 3)],
        &workloads,
        budget,
    );
    println!();
    println!("go is limited by the branch-resolution loop (whole-pipe length),");
    println!("swim by the load-resolution loop (IQ-EX only), and hydro2d by");
    println!("main memory (neither) — the paper's 'not all pipelines are");
    println!("created equal' result.");
    println!();
    println!("sweep: {}", sweep.summary().line());
}
