//! Quickstart: assemble a small program, run it through the cycle-level
//! pipeline with functional verification enabled, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use looseloops_repro::core::{Machine, PipelineConfig};
use looseloops_repro::isa::{asm, Reg};

fn main() {
    // A little dot-product-ish kernel in the mini ISA.
    let program = asm::assemble_named(
        "dotprod",
        "
        .data 0x10000, 1, 2, 3, 4, 5, 6, 7, 8
        .data 0x20000, 8, 7, 6, 5, 4, 3, 2, 1
            addi r1, r31, 0x10000     ; a[]
            addi r2, r31, 0x20000     ; b[]
            addi r3, r31, 8           ; n
            addi r4, r31, 0           ; sum
        loop:
            ldq  r5, 0(r1)
            ldq  r6, 0(r2)
            mul  r7, r5, r6
            add  r4, r4, r7
            addi r1, r1, 8
            addi r2, r2, 8
            subi r3, r3, 1
            bne  r3, loop
            stq  r4, 0(r1)
            halt
    ",
    )
    .expect("valid assembly");

    // The paper's base machine: 8-wide, 8 clusters, 128-entry IQ,
    // 5-cycle DEC-IQ, 5-cycle IQ-EX.
    let mut machine = Machine::new(PipelineConfig::base(), vec![program]).unwrap();
    // Check every retired instruction against the functional interpreter.
    machine.enable_verification();

    machine.run(u64::MAX, 1_000_000).unwrap();
    assert!(machine.is_done(), "program should halt");

    let sum = machine.arch_reg(0, Reg::int(4));
    let stats = machine.stats();
    println!("a·b                 = {sum}");
    println!("cycles              = {}", stats.cycles);
    println!("instructions        = {}", stats.total_retired());
    println!("IPC                 = {:.3}", stats.ipc());
    println!(
        "branches            = {} ({} mispredicted)",
        stats.branches, stats.branch_mispredicts
    );
    println!(
        "loads               = {} ({} L1 misses)",
        stats.loads, stats.load_l1_misses
    );
    println!("load-loop replays   = {}", stats.load_replays);
    assert_eq!(sum, 120, "1*8 + 2*7 + ... + 8*1");
}
