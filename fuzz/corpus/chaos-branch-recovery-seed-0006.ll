; looseloops-fuzz corpus v1
; name: chaos-branch-recovery-seed-0006
; finding: retire divergence
; config: scheme=dra rf=5 dec=7 ex=3 policy=tree predictor=tournament threads=1
; faults: none
; max-cycles: 2000000
; oracle-steps: 1000000
.data 0x10000, 0xdfa3bb67dc8d2eaf, 0xdfa3bb67dc8dcce5, 0xdfa3bb67dc8e6b1d, 0xdfa3bb67dc8f0953, 0xdfa3bb67dc8fa78b, 0xdfa3bb67dc9045c1, 0xdfa3bb67dc90e3f9, 0xdfa3bb67dc91822f, 0xdfa3bb67dc922067, 0xdfa3bb67dc92be9d, 0xdfa3bb67dc935cd5, 0xdfa3bb67dc93fb0b, 0xdfa3bb67dc949943, 0xdfa3bb67dc953779, 0xdfa3bb67dc95d5b1, 0xdfa3bb67dc9673e7, 0xdfa3bb67dc97121f, 0xdfa3bb67dc97b055, 0xdfa3bb67dc984e8d, 0xdfa3bb67dc98ecc3, 0xdfa3bb67dc998afb, 0xdfa3bb67dc9a2931, 0xdfa3bb67dc9ac769, 0xdfa3bb67dc9b659f, 0xdfa3bb67dc9c03d7, 0xdfa3bb67dc9ca20d, 0xdfa3bb67dc9d4045, 0xdfa3bb67dc9dde7b, 0xdfa3bb67dc9e7cb3, 0xdfa3bb67dc9f1ae9, 0xdfa3bb67dc9fb921, 0xdfa3bb67dca05757, 0xdfa3bb67dca0f58f, 0xdfa3bb67dca193c5, 0xdfa3bb67dca231fd, 0xdfa3bb67dca2d033, 0xdfa3bb67dca36e6b, 0xdfa3bb67dca40ca1, 0xdfa3bb67dca4aad9, 0xdfa3bb67dca5490f, 0xdfa3bb67dca5e747, 0xdfa3bb67dca6857d, 0xdfa3bb67dca723b5, 0xdfa3bb67dca7c1eb, 0xdfa3bb67dca86023, 0xdfa3bb67dca8fe59, 0xdfa3bb67dca99c91, 0xdfa3bb67dcaa3ac7, 0xdfa3bb67dcaad8ff, 0xdfa3bb67dcab7735, 0xdfa3bb67dcac156d, 0xdfa3bb67dcacb3a3, 0xdfa3bb67dcad51db, 0xdfa3bb67dcadf011, 0xdfa3bb67dcae8e49, 0xdfa3bb67dcaf2c7f, 0xdfa3bb67dcafcab7, 0xdfa3bb67dcb068ed, 0xdfa3bb67dcb10725, 0xdfa3bb67dcb1a55b, 0xdfa3bb67dcb24393, 0xdfa3bb67dcb2e1c9, 0xdfa3bb67dcb38001, 0xdfa3bb67dcb41e37
    addi r1, r31, 65536
    addi r10, r31, 2
    jsr r26, +3
    subi r10, r10, 1
    bne r10, -3
    halt
    add r19, r18, r23
    ret r26
