; looseloops-fuzz corpus v1
; name: chaos-branch-recovery-seed-0007
; finding: retire divergence
; config: scheme=base rf=3 dec=5 ex=5 policy=tree predictor=tournament threads=1
; faults: none
; max-cycles: 2000000
; oracle-steps: 1000000
.data 0x110000, 0x4e9aff92bfa0bcb, 0x4e9aff92bfaaa03, 0x4e9aff92bfb4839, 0x4e9aff92bfbe671, 0x4e9aff92bfc84a7, 0x4e9aff92bfd22df, 0x4e9aff92bfdc115, 0x4e9aff92bfe5f4d, 0x4e9aff92bfefd83, 0x4e9aff92bff9bbb, 0x4e9aff92c0039f1, 0x4e9aff92c00d829, 0x4e9aff92c01765f, 0x4e9aff92c021497, 0x4e9aff92c02b2cd, 0x4e9aff92c035105, 0x4e9aff92c03ef3b, 0x4e9aff92c048d73, 0x4e9aff92c052ba9, 0x4e9aff92c05c9e1, 0x4e9aff92c066817, 0x4e9aff92c07064f, 0x4e9aff92c07a485, 0x4e9aff92c0842bd, 0x4e9aff92c08e0f3, 0x4e9aff92c097f2b, 0x4e9aff92c0a1d61, 0x4e9aff92c0abb99, 0x4e9aff92c0b59cf, 0x4e9aff92c0bf807, 0x4e9aff92c0c963d, 0x4e9aff92c0d3475, 0x4e9aff92c0dd2ab, 0x4e9aff92c0e70e3, 0x4e9aff92c0f0f19, 0x4e9aff92c0fad51, 0x4e9aff92c104b87, 0x4e9aff92c10e9bf, 0x4e9aff92c1187f5, 0x4e9aff92c12262d, 0x4e9aff92c12c463, 0x4e9aff92c13629b, 0x4e9aff92c1400d1, 0x4e9aff92c149f09, 0x4e9aff92c153d3f, 0x4e9aff92c15db77, 0x4e9aff92c1679ad, 0x4e9aff92c1717e5, 0x4e9aff92c17b61b, 0x4e9aff92c185453, 0x4e9aff92c18f289, 0x4e9aff92c1990c1, 0x4e9aff92c1a2ef7, 0x4e9aff92c1acd2f, 0x4e9aff92c1b6b65, 0x4e9aff92c1c099d, 0x4e9aff92c1ca7d3, 0x4e9aff92c1d460b, 0x4e9aff92c1de441, 0x4e9aff92c1e8279, 0x4e9aff92c1f20af, 0x4e9aff92c1fbee7, 0x4e9aff92c205d1d, 0x4e9aff92c20fb55
    addi r1, r31, 1114112
    beq r4, +1
    br +1
    mb
    slli r7, r8, 13
    halt
