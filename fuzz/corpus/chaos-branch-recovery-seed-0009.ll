; looseloops-fuzz corpus v1
; name: chaos-branch-recovery-seed-0009
; finding: retire divergence
; config: scheme=base rf=7 dec=7 ex=9 policy=tree predictor=tournament threads=1
; faults: none
; max-cycles: 2000000
; oracle-steps: 1000000
.data 0x10000, 0x4f75991bcad3c605, 0x4f75991bcad4643d, 0x4f75991bcad50273, 0x4f75991bcad5a0ab, 0x4f75991bcad63ee1, 0x4f75991bcad6dd19, 0x4f75991bcad77b4f, 0x4f75991bcad81987, 0x4f75991bcad8b7bd, 0x4f75991bcad955f5, 0x4f75991bcad9f42b, 0x4f75991bcada9263, 0x4f75991bcadb3099, 0x4f75991bcadbced1, 0x4f75991bcadc6d07, 0x4f75991bcadd0b3f, 0x4f75991bcadda975, 0x4f75991bcade47ad, 0x4f75991bcadee5e3, 0x4f75991bcadf841b, 0x4f75991bcae02251, 0x4f75991bcae0c089, 0x4f75991bcae15ebf, 0x4f75991bcae1fcf7, 0x4f75991bcae29b2d, 0x4f75991bcae33965, 0x4f75991bcae3d79b, 0x4f75991bcae475d3, 0x4f75991bcae51409, 0x4f75991bcae5b241, 0x4f75991bcae65077, 0x4f75991bcae6eeaf, 0x4f75991bcae78ce5, 0x4f75991bcae82b1d, 0x4f75991bcae8c953, 0x4f75991bcae9678b, 0x4f75991bcaea05c1, 0x4f75991bcaeaa3f9, 0x4f75991bcaeb422f, 0x4f75991bcaebe067, 0x4f75991bcaec7e9d, 0x4f75991bcaed1cd5, 0x4f75991bcaedbb0b, 0x4f75991bcaee5943, 0x4f75991bcaeef779, 0x4f75991bcaef95b1, 0x4f75991bcaf033e7, 0x4f75991bcaf0d21f, 0x4f75991bcaf17055, 0x4f75991bcaf20e8d, 0x4f75991bcaf2acc3, 0x4f75991bcaf34afb, 0x4f75991bcaf3e931, 0x4f75991bcaf48769, 0x4f75991bcaf5259f, 0x4f75991bcaf5c3d7, 0x4f75991bcaf6620d, 0x4f75991bcaf70045, 0x4f75991bcaf79e7b, 0x4f75991bcaf83cb3, 0x4f75991bcaf8dae9, 0x4f75991bcaf97921, 0x4f75991bcafa1757, 0x4f75991bcafab58f
    addi r1, r31, 65536
    addi r8, r31, 1679457
    andi r4, r8, 1
    bne r4, +1
    mul r18, r19, r18
    addi r18, r18, -33
    halt
