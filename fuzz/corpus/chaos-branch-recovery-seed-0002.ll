; looseloops-fuzz corpus v1
; name: chaos-branch-recovery-seed-0002
; finding: retire divergence
; config: scheme=base rf=3 dec=6 ex=5 policy=tree predictor=tournament threads=1
; faults: none
; max-cycles: 2000000
; oracle-steps: 1000000
.data 0x110000, 0x4a8be9229ed9ba3b, 0x4a8be9229eda5871, 0x4a8be9229edaf6a9, 0x4a8be9229edb94df, 0x4a8be9229edc3317, 0x4a8be9229edcd14d, 0x4a8be9229edd6f85, 0x4a8be9229ede0dbb, 0x4a8be9229edeabf3, 0x4a8be9229edf4a29, 0x4a8be9229edfe861, 0x4a8be9229ee08697, 0x4a8be9229ee124cf, 0x4a8be9229ee1c305, 0x4a8be9229ee2613d, 0x4a8be9229ee2ff73, 0x4a8be9229ee39dab, 0x4a8be9229ee43be1, 0x4a8be9229ee4da19, 0x4a8be9229ee5784f, 0x4a8be9229ee61687, 0x4a8be9229ee6b4bd, 0x4a8be9229ee752f5, 0x4a8be9229ee7f12b, 0x4a8be9229ee88f63, 0x4a8be9229ee92d99, 0x4a8be9229ee9cbd1, 0x4a8be9229eea6a07, 0x4a8be9229eeb083f, 0x4a8be9229eeba675, 0x4a8be9229eec44ad, 0x4a8be9229eece2e3, 0x4a8be9229eed811b, 0x4a8be9229eee1f51, 0x4a8be9229eeebd89, 0x4a8be9229eef5bbf, 0x4a8be9229eeff9f7, 0x4a8be9229ef0982d, 0x4a8be9229ef13665, 0x4a8be9229ef1d49b, 0x4a8be9229ef272d3, 0x4a8be9229ef31109, 0x4a8be9229ef3af41, 0x4a8be9229ef44d77, 0x4a8be9229ef4ebaf, 0x4a8be9229ef589e5, 0x4a8be9229ef6281d, 0x4a8be9229ef6c653, 0x4a8be9229ef7648b, 0x4a8be9229ef802c1, 0x4a8be9229ef8a0f9, 0x4a8be9229ef93f2f, 0x4a8be9229ef9dd67, 0x4a8be9229efa7b9d, 0x4a8be9229efb19d5, 0x4a8be9229efbb80b, 0x4a8be9229efc5643, 0x4a8be9229efcf479, 0x4a8be9229efd92b1, 0x4a8be9229efe30e7, 0x4a8be9229efecf1f, 0x4a8be9229eff6d55, 0x4a8be9229f000b8d, 0x4a8be9229f00a9c3
    addi r1, r31, 1114112
    addi r10, r31, 5
    mb
    subi r10, r10, 1
    bne r10, -3
    halt
