//! Cross-handle contention on one result-store directory: concurrent
//! saves and loads of the same and different digests must never expose a
//! torn entry. The store's only guarantees are (a) atomic publication
//! via write-to-temp-then-rename and (b) key verification on load — so
//! every load must return nothing, or a complete decodable entry that
//! matches one of the values some writer actually published.

use looseloops_repro::core::{ResultStore, SimStats};

/// Distinguishable stats: a writer's iteration is recoverable from the
/// cycle count, so readers can check completeness (every section of the
/// entry must agree on the iteration).
fn stats_for(iteration: u64) -> SimStats {
    let mut s = SimStats::new(1);
    s.cycles = 10_000 + iteration;
    s.retired = vec![20_000 + iteration];
    s.branches = 3_000 + iteration;
    s.loads = 4_000 + iteration;
    s.loop_cost.cycles = 10_000 + iteration;
    s.loop_cost.width = 4;
    s
}

#[test]
fn racing_handles_never_observe_a_torn_entry() {
    let dir = std::env::temp_dir().join(format!("looseloops-store-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    const WRITERS: u64 = 4;
    const ITERS: u64 = 40;
    const SHARED_DIGEST: u64 = 42;
    const SHARED_KEY: &str = "job: shared config";

    std::thread::scope(|scope| {
        // Writers: each opens its OWN handle (as a separate process
        // would), hammers the shared digest, and keeps a private digest
        // of its own alive alongside.
        for t in 0..WRITERS {
            let dir = &dir;
            scope.spawn(move || {
                let store = ResultStore::open(dir).expect("writer opens store");
                let own_key = format!("job: writer {t}");
                for i in 0..ITERS {
                    store
                        .save(SHARED_DIGEST, SHARED_KEY, &stats_for(i))
                        .expect("save shared digest");
                    store
                        .save(1_000 + t, &own_key, &stats_for(t * 1_000 + i))
                        .expect("save private digest");
                }
            });
        }

        // Readers: their own handles too, polling both the contended
        // digest and the private ones while the writers run.
        for t in 0..WRITERS {
            let dir = &dir;
            scope.spawn(move || {
                let store = ResultStore::open(dir).expect("reader opens store");
                let own_key = format!("job: writer {t}");
                for _ in 0..ITERS * 2 {
                    // Shared digest: absent or a complete entry from one
                    // single save (all fields agree on the iteration).
                    match store
                        .load(SHARED_DIGEST, SHARED_KEY)
                        .expect("load is clean")
                    {
                        None => {}
                        Some(s) => {
                            let i = s.cycles - 10_000;
                            assert!(i < ITERS, "cycles out of range: {}", s.cycles);
                            let expect = stats_for(i);
                            assert_eq!(s.retired, expect.retired, "torn entry");
                            assert_eq!(s.branches, expect.branches, "torn entry");
                            assert_eq!(s.loads, expect.loads, "torn entry");
                            assert_eq!(s.loop_cost.cycles, expect.loop_cost.cycles);
                        }
                    }
                    // Private digest, right key: absent or that writer's.
                    if let Some(s) = store.load(1_000 + t, &own_key).expect("load is clean") {
                        let i = s.cycles - 10_000;
                        assert_eq!(i / 1_000, t, "wrong writer's entry under digest");
                    }
                    // Private digest, WRONG key: digest collisions answer
                    // as a miss, never as someone else's results.
                    let other = format!("job: writer {}", (t + 1) % WRITERS);
                    assert!(
                        store
                            .load(1_000 + t, &other)
                            .expect("collision load is clean")
                            .is_none(),
                        "a key mismatch must be a miss"
                    );
                }
            });
        }
    });

    // Quiescent state: every digest holds the final complete value.
    let store = ResultStore::open(&dir).expect("final open");
    let last = store
        .load(SHARED_DIGEST, SHARED_KEY)
        .expect("final load")
        .expect("shared digest present");
    assert_eq!(last.retired[0], 20_000 + (last.cycles - 10_000));
    for t in 0..WRITERS {
        let s = store
            .load(1_000 + t, &format!("job: writer {t}"))
            .expect("final private load")
            .expect("private digest present");
        assert_eq!((s.cycles - 10_000) / 1_000, t);
    }
    // No leaked temp files: every `.tmp.` either renamed or was the
    // losing writer's (removed best-effort after a failed rename — on
    // POSIX renames never fail here, so none survive).
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("read store dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "leaked temp files: {leftovers:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
