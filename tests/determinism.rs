//! Determinism: identical configuration + workload ⇒ identical cycle
//! counts and statistics, across every scheme. Figure results depend on
//! this (speedups are ratios of single runs).

use looseloops_repro::core::{run_benchmark, Benchmark, PipelineConfig, RunBudget};
use looseloops_repro::workload::Benchmark as B;

fn budget() -> RunBudget {
    RunBudget {
        warmup: 1_000,
        measure: 8_000,
        max_cycles: 2_000_000,
    }
}

fn fingerprint(cfg: &PipelineConfig, b: Benchmark) -> (u64, u64, u64, u64, [u64; 5]) {
    let s = run_benchmark(cfg, b, budget());
    (
        s.cycles,
        s.total_retired(),
        s.branch_mispredicts,
        s.load_replays,
        s.operand_sources,
    )
}

#[test]
fn base_runs_are_reproducible() {
    for b in [B::Compress, B::Swim, B::Apsi] {
        let cfg = PipelineConfig::base();
        assert_eq!(fingerprint(&cfg, b), fingerprint(&cfg, b), "{b}");
    }
}

#[test]
fn dra_runs_are_reproducible() {
    for b in [B::Gcc, B::Turb3d] {
        let cfg = PipelineConfig::dra_for_rf(5);
        assert_eq!(fingerprint(&cfg, b), fingerprint(&cfg, b), "{b}");
    }
}

#[test]
fn different_configs_actually_differ() {
    let a = fingerprint(&PipelineConfig::base_with_latencies(3, 3), B::Go);
    let b = fingerprint(&PipelineConfig::base_with_latencies(9, 9), B::Go);
    assert_ne!(a.0, b.0, "pipeline length must change the cycle count");
}

#[test]
fn smt_runs_are_reproducible() {
    let cfg = PipelineConfig::base().smt(2);
    let run = || {
        let s = looseloops_repro::core::run_pair(&cfg, B::pairs()[0], budget());
        (s.cycles, s.retired.clone())
    };
    assert_eq!(run(), run());
}
