//! Per-loop CPI-stack attribution: conservation, normalization, the
//! paper's qualitative trend (longer pipes charge more to the
//! branch-resolution loop), and stack determinism through the sweep
//! engine's memo cache.

use looseloops_repro::core::{
    cpi_stack_report_on, figure_cpi_stacks_on, pipeline::Machine, CpiComponent, PipelineConfig,
    RunBudget, SweepEngine, Workload,
};
use looseloops_repro::core::{try_run_benchmark, Benchmark};

fn tiny() -> RunBudget {
    RunBudget {
        warmup: 500,
        measure: 3_000,
        max_cycles: 2_000_000,
    }
}

/// Conservation is integer-exact on every machine the paper evaluates:
/// used slots plus charged slots equals width × cycles, and the
/// normalized components sum to the measured CPI. The per-cycle auditor
/// checks the integer identity every cycle of these runs.
#[test]
fn stacks_conserve_and_sum_to_cpi_on_all_machines() {
    let machines = [
        PipelineConfig::base(),
        PipelineConfig::base_with_latencies(9, 9),
        PipelineConfig::dra_for_rf(5),
    ];
    for cfg in machines {
        let audited = PipelineConfig {
            audit: true,
            ..cfg.clone()
        };
        let stats = try_run_benchmark(&audited, Benchmark::Compress, tiny())
            .expect("audited run completes");
        let st = &stats.loop_cost;
        assert!(st.conserves(), "slot leak on {cfg:?}");
        assert_eq!(st.used + st.total_lost(), st.width * st.cycles);
        assert_eq!(st.cycles, stats.cycles);
        assert_eq!(st.used, stats.total_retired());
        let sum: f64 = st.cpi_components().iter().sum();
        assert!(
            (sum - st.cpi()).abs() < 1e-9,
            "components sum to {sum}, CPI is {}",
            st.cpi()
        );
    }
}

/// Warm-up statistics are discarded; the measured stack accounts exactly
/// the measured window.
#[test]
fn stack_restarts_with_the_measurement_window() {
    let cfg = PipelineConfig::base();
    let prog = Benchmark::Compress.program();
    let mut m = Machine::new(cfg, vec![prog]).unwrap();
    m.run(500, 1_000_000).unwrap();
    m.reset_stats();
    assert_eq!(m.stats().loop_cost.cycles, 0, "reset clears the stack");
    m.run(2_000, 1_000_000).unwrap();
    let st = &m.stats().loop_cost;
    assert_eq!(st.cycles, m.stats().cycles);
    assert!(st.conserves());
}

/// Figure 4's qualitative claim, read off the stacks: stretching DEC→EX
/// from 6 to 18 cycles grows the CPI charged to the branch-resolution
/// loop monotonically on a branch-limited integer code.
#[test]
fn branch_resolution_component_grows_with_pipeline_length() {
    let sweep = SweepEngine::new(2);
    let ws = [Workload::Single(Benchmark::Compress)];
    let rep = figure_cpi_stacks_on(&sweep, "fig4", &ws, tiny()).expect("fig4 has stacks");
    assert_eq!(rep.rows.len(), 4, "one row per fig4 machine");
    let idx = CpiComponent::BranchResolution.index();
    let branch: Vec<f64> = rep.rows.iter().map(|r| r.components[idx]).collect();
    for (i, w) in branch.windows(2).enumerate() {
        assert!(
            w[1] >= w[0] - 1e-12,
            "branch-resolution CPI must not shrink as the pipe lengthens: \
             {branch:?} (step {i})"
        );
    }
    assert!(
        branch[3] > branch[0],
        "18-cycle DEC->EX must charge strictly more to the branch loop than 6-cycle: {branch:?}"
    );
    // Every row of the report still conserves after normalization.
    for r in &rep.rows {
        let sum: f64 = r.components.iter().sum();
        assert!(
            (sum - r.cpi).abs() < 1e-9,
            "{}: {sum} vs {}",
            r.label,
            r.cpi
        );
    }
}

/// A memoized run carries its stack: asking again answers from the cache
/// with an identical (PartialEq) stack, and stacks are identical across
/// worker counts.
#[test]
fn cached_and_fresh_stacks_are_identical() {
    let ws = Workload::smoke_set();
    let configs = [("base".to_string(), PipelineConfig::base())];

    let serial = SweepEngine::new(1);
    let a = cpi_stack_report_on(&serial, "s", "t", &configs, &ws, tiny());
    let parallel = SweepEngine::new(8);
    let b = cpi_stack_report_on(&parallel, "s", "t", &configs, &ws, tiny());
    assert_eq!(a.to_csv(), b.to_csv(), "stacks are worker-count invariant");

    // Second generation on the same engine: all cache hits, same bytes.
    parallel.reset_metrics();
    let c = cpi_stack_report_on(&parallel, "s", "t", &configs, &ws, tiny());
    let s = parallel.summary();
    assert_eq!(s.jobs_run, 0, "second pass is pure cache hits");
    assert_eq!(s.cache_hits, ws.len() as u64);
    assert_eq!(b.to_csv(), c.to_csv());
}
