//! The sweep engine only reorders independent deterministic simulations,
//! so a parallel sweep must be *byte-identical* to the serial path, and
//! repeated figures must come from the memo cache instead of re-running.

use looseloops_repro::core::{
    ablation_dra_design_on, fig4_pipeline_length_on, ExecMode, ResultStore, RunBudget, SweepEngine,
    Workload,
};

fn tiny() -> RunBudget {
    RunBudget {
        warmup: 500,
        measure: 3_000,
        max_cycles: 2_000_000,
    }
}

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("looseloops-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fig4_parallel_is_byte_identical_to_serial() {
    let serial = SweepEngine::new(1);
    let parallel = SweepEngine::new(8);
    let ws = Workload::smoke_set();
    let a = fig4_pipeline_length_on(&serial, &ws, tiny());
    let b = fig4_pipeline_length_on(&parallel, &ws, tiny());
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "--jobs 8 must reproduce --jobs 1 exactly"
    );
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(serial.summary().jobs_run, parallel.summary().jobs_run);
    assert_eq!(parallel.workers(), 8);
}

#[test]
fn dra_ablation_parallel_is_byte_identical_to_serial() {
    let serial = SweepEngine::new(1);
    let parallel = SweepEngine::new(8);
    let ws = Workload::smoke_set();
    let a = ablation_dra_design_on(&serial, &ws, tiny());
    let b = ablation_dra_design_on(&parallel, &ws, tiny());
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "--jobs 8 must reproduce --jobs 1 exactly"
    );
}

#[test]
fn repeated_figures_hit_the_cache() {
    let sweep = SweepEngine::new(4);
    let ws = Workload::smoke_set();
    let first = fig4_pipeline_length_on(&sweep, &ws, tiny());
    let after_first = sweep.summary();
    assert!(after_first.jobs_run > 0);
    assert_eq!(
        after_first.cache_hits, 0,
        "a cold engine has nothing to hit"
    );

    let second = fig4_pipeline_length_on(&sweep, &ws, tiny());
    let after_second = sweep.summary();
    assert_eq!(
        after_second.jobs_run, after_first.jobs_run,
        "regenerating a figure must not simulate anything new"
    );
    assert_eq!(
        after_second.cache_hits, after_first.jobs_run,
        "every job of the repeat must be a cache hit"
    );
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "memoized results must be identical"
    );
}

#[test]
fn store_backed_figures_are_byte_identical_to_store_less_runs() {
    let dir = scratch("store-determinism");
    let ws = Workload::smoke_set();

    // Reference: no store at all.
    let plain = SweepEngine::new(4);
    let reference = fig4_pipeline_length_on(&plain, &ws, tiny());

    // Cold store-backed run: simulates everything, writes the store.
    let cold = SweepEngine::with_stores(
        4,
        ExecMode::Detailed,
        None,
        Some(ResultStore::open(&dir).expect("open store")),
    );
    let first = fig4_pipeline_length_on(&cold, &ws, tiny());
    assert_eq!(
        first.to_json(),
        reference.to_json(),
        "attaching a store must not change any figure byte"
    );
    let cold_summary = cold.summary();
    assert!(cold_summary.jobs_run > 0);
    assert_eq!(cold_summary.store_hits, 0, "a cold store has nothing");

    // Warm run in a *fresh* engine (empty memo cache) on the same
    // directory: everything is answered from disk, nothing simulates.
    let warm = SweepEngine::with_stores(
        4,
        ExecMode::Detailed,
        None,
        Some(ResultStore::open(&dir).expect("reopen store")),
    );
    let second = fig4_pipeline_length_on(&warm, &ws, tiny());
    assert_eq!(
        second.to_json(),
        reference.to_json(),
        "store-served results must be byte-identical"
    );
    assert_eq!(second.to_csv(), reference.to_csv());
    let warm_summary = warm.summary();
    assert_eq!(warm_summary.jobs_run, 0, "warm store must answer every job");
    assert_eq!(warm_summary.store_hits, cold_summary.jobs_run);
    assert!(warm_summary.line().contains("store hits"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overlapping_figures_share_runs() {
    // Figure 4's 5_5 machine at rf=3 is the same machine Figure 8's rf=3
    // base column uses (base_with_latencies(5, 5) == base_for_rf(3)), so
    // running fig4 first must make part of fig8 free.
    use looseloops_repro::core::fig8_dra_speedup_on;
    let sweep = SweepEngine::new(4);
    let ws = Workload::smoke_set();
    fig4_pipeline_length_on(&sweep, &ws, tiny());
    let before = sweep.summary();
    fig8_dra_speedup_on(&sweep, &ws, tiny());
    let after = sweep.summary();
    assert!(
        after.cache_hits > before.cache_hits,
        "fig8 must reuse fig4's base-machine runs (hits {} -> {})",
        before.cache_hits,
        after.cache_hits
    );
}
