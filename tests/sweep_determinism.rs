//! The sweep engine only reorders independent deterministic simulations,
//! so a parallel sweep must be *byte-identical* to the serial path, and
//! repeated figures must come from the memo cache instead of re-running.

use looseloops_repro::core::{
    ablation_dra_design_on, fig4_pipeline_length_on, RunBudget, SweepEngine, Workload,
};

fn tiny() -> RunBudget {
    RunBudget {
        warmup: 500,
        measure: 3_000,
        max_cycles: 2_000_000,
    }
}

#[test]
fn fig4_parallel_is_byte_identical_to_serial() {
    let serial = SweepEngine::new(1);
    let parallel = SweepEngine::new(8);
    let ws = Workload::smoke_set();
    let a = fig4_pipeline_length_on(&serial, &ws, tiny());
    let b = fig4_pipeline_length_on(&parallel, &ws, tiny());
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "--jobs 8 must reproduce --jobs 1 exactly"
    );
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(serial.summary().jobs_run, parallel.summary().jobs_run);
    assert_eq!(parallel.workers(), 8);
}

#[test]
fn dra_ablation_parallel_is_byte_identical_to_serial() {
    let serial = SweepEngine::new(1);
    let parallel = SweepEngine::new(8);
    let ws = Workload::smoke_set();
    let a = ablation_dra_design_on(&serial, &ws, tiny());
    let b = ablation_dra_design_on(&parallel, &ws, tiny());
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "--jobs 8 must reproduce --jobs 1 exactly"
    );
}

#[test]
fn repeated_figures_hit_the_cache() {
    let sweep = SweepEngine::new(4);
    let ws = Workload::smoke_set();
    let first = fig4_pipeline_length_on(&sweep, &ws, tiny());
    let after_first = sweep.summary();
    assert!(after_first.jobs_run > 0);
    assert_eq!(
        after_first.cache_hits, 0,
        "a cold engine has nothing to hit"
    );

    let second = fig4_pipeline_length_on(&sweep, &ws, tiny());
    let after_second = sweep.summary();
    assert_eq!(
        after_second.jobs_run, after_first.jobs_run,
        "regenerating a figure must not simulate anything new"
    );
    assert_eq!(
        after_second.cache_hits, after_first.jobs_run,
        "every job of the repeat must be a cache hit"
    );
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "memoized results must be identical"
    );
}

#[test]
fn overlapping_figures_share_runs() {
    // Figure 4's 5_5 machine at rf=3 is the same machine Figure 8's rf=3
    // base column uses (base_with_latencies(5, 5) == base_for_rf(3)), so
    // running fig4 first must make part of fig8 free.
    use looseloops_repro::core::fig8_dra_speedup_on;
    let sweep = SweepEngine::new(4);
    let ws = Workload::smoke_set();
    fig4_pipeline_length_on(&sweep, &ws, tiny());
    let before = sweep.summary();
    fig8_dra_speedup_on(&sweep, &ws, tiny());
    let after = sweep.summary();
    assert!(
        after.cache_hits > before.cache_hits,
        "fig8 must reuse fig4's base-machine runs (hits {} -> {})",
        before.cache_hits,
        after.cache_hits
    );
}
