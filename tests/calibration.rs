//! Kernel calibration contracts: each Spec95 proxy must sit at the
//! operating point its paper characterization requires (DESIGN.md §4).
//! These tests pin the workload suite — if a kernel drifts out of its
//! envelope, the figures stop meaning what EXPERIMENTS.md says they mean.

use looseloops_repro::core::SimStats;
use looseloops_repro::core::{run_benchmark, Benchmark, PipelineConfig, RunBudget};

fn measure(b: Benchmark) -> SimStats {
    let budget = RunBudget {
        warmup: 30_000,
        measure: 60_000,
        max_cycles: 50_000_000,
    };
    run_benchmark(&PipelineConfig::base(), b, budget)
}

#[test]
fn branchy_int_codes_mispredict_heavily() {
    for b in [Benchmark::Compress, Benchmark::Gcc, Benchmark::Go] {
        let s = measure(b);
        let rate = s.branch_mispredict_rate();
        assert!(
            (0.08..0.45).contains(&rate),
            "{b}: mispredict rate {rate:.3} outside the branchy-int envelope"
        );
        let density = s.branches as f64 / s.total_retired() as f64;
        assert!(density > 0.10, "{b}: branch density {density:.3} too low");
    }
}

#[test]
fn m88ksim_is_well_predicted() {
    let s = measure(Benchmark::M88ksim);
    assert!(
        s.branch_mispredict_rate() < 0.02,
        "m88ksim must be nearly mispredict-free, got {:.3}",
        s.branch_mispredict_rate()
    );
}

#[test]
fn load_hit_rates_are_realistic() {
    // The paper: "most programs have a high load hit rate" — speculation
    // must be a good bet everywhere.
    for b in Benchmark::all() {
        let s = measure(b);
        if matches!(b, Benchmark::Hydro2d | Benchmark::Mgrid) {
            // The deliberately memory-bound codes: every iteration brings a
            // fresh line from main memory (the stencil re-touches lines, so
            // the per-load rate sits between 1/3 and ~1).
            assert!(
                s.load_miss_rate() > 0.25,
                "{b}: miss rate {:.3} — should be memory-bound",
                s.load_miss_rate()
            );
        } else {
            assert!(
                s.load_miss_rate() < 0.25,
                "{b}: miss rate {:.3} too high for a high-hit-rate code",
                s.load_miss_rate()
            );
        }
    }
}

#[test]
fn swim_and_turb3d_exercise_the_load_loop() {
    for b in [Benchmark::Swim, Benchmark::Turb3d] {
        let s = measure(b);
        assert!(
            (0.02..0.25).contains(&s.load_miss_rate()),
            "{b}: L1 miss rate {:.3} outside the L2-resident-stream envelope",
            s.load_miss_rate()
        );
        assert!(
            s.load_replays > 50,
            "{b}: the load loop must fire ({} replays)",
            s.load_replays
        );
    }
}

#[test]
fn turb3d_takes_tlb_traps() {
    let s = measure(Benchmark::Turb3d);
    assert!(s.tlb_traps > 10, "turb3d's long strides must trap the dTLB");
    // But not so many that they dominate (a trap storm would change its
    // character entirely).
    assert!((s.tlb_traps as f64) < s.total_retired() as f64 / 200.0);
}

#[test]
fn apsi_is_chain_bound_with_dra_misses() {
    let s = measure(Benchmark::Apsi);
    assert!(
        s.ipc() < 1.2,
        "apsi must be low-ILP, got ipc {:.2}",
        s.ipc()
    );
    let dra = run_benchmark(
        &PipelineConfig::dra_for_rf(5),
        Benchmark::Apsi,
        RunBudget {
            warmup: 30_000,
            measure: 60_000,
            max_cycles: 50_000_000,
        },
    );
    assert!(
        (0.004..0.04).contains(&dra.operand_miss_rate()),
        "apsi operand-miss rate {:.4} outside the paper's ~1.5% neighbourhood",
        dra.operand_miss_rate()
    );
}

#[test]
fn su2cor_queues_wide_fp_work() {
    let s = measure(Benchmark::Su2cor);
    assert!(
        s.branch_mispredict_rate() < 0.10,
        "su2cor mispredicts rarely, got {:.3}",
        s.branch_mispredict_rate()
    );
    assert!(s.iq_occupancy_mean > 30.0, "su2cor must keep the IQ busy");
}

#[test]
fn memory_bound_codes_ignore_pipe_length() {
    // The defining property the paper uses for hydro2d/mgrid: main-memory
    // latency dwarfs the loop delays.
    let budget = RunBudget {
        warmup: 20_000,
        measure: 40_000,
        max_cycles: 50_000_000,
    };
    for b in [Benchmark::Hydro2d, Benchmark::Mgrid] {
        let short = run_benchmark(&PipelineConfig::base_with_latencies(3, 3), b, budget).ipc();
        let long = run_benchmark(&PipelineConfig::base_with_latencies(9, 9), b, budget).ipc();
        let loss = 1.0 - long / short;
        assert!(
            loss < 0.20,
            "{b}: lost {:.1}% to pipe length — too sensitive for a memory-bound code",
            loss * 100.0
        );
    }
}
