//! Differential cycle-exactness suite for the event-driven engine.
//!
//! The incremental ready lists and the quiescence skip are pure
//! accelerations: they must reproduce the naive per-cycle engine's
//! behavior *exactly* — same cycle count, same `SimStats` (CPI stack,
//! stall counters, IQ occupancy sums included), same retire stream.
//! Every case here runs twice, event-driven (the default) vs naive
//! (`set_event_driven(false)`), and compares the full Debug rendering of
//! the statistics plus the captured retire streams.
//!
//! Coverage: the checked-in fuzz regression corpus, fresh
//! structure-aware fuzz cases, fault storms (latency spikes, branch
//! flips, DRA operand drops) across all four load-speculation policies
//! and both register schemes, and SMT with store-wait traps.

use looseloops_fuzz::FuzzCase;
use looseloops_isa::Program;
use looseloops_pipeline::{FaultPlan, Machine, PipelineConfig};
use looseloops_workload::{synthetic, SyntheticParams};
use std::path::Path;

/// Run `cfg` on `programs` once with each engine and assert identical
/// observable behavior. The auditor is forced off: it would disable the
/// quiescence skip (by design) and this suite exists to exercise it.
fn assert_engines_agree(mut cfg: PipelineConfig, programs: Vec<Program>, label: &str) {
    cfg.audit = false;
    let run = |naive: bool| {
        let mut m = Machine::new(cfg.clone(), programs.clone()).expect("valid config");
        if naive {
            m.set_event_driven(false);
        }
        m.enable_retire_capture();
        // Deadlocks must also be *identical* (same cycle, same snapshot),
        // so keep the error rather than unwrapping.
        let outcome = m
            .run(u64::MAX, 300_000)
            .map(|_| ())
            .map_err(|e| e.to_string());
        (
            outcome,
            m.cycle(),
            format!("{:?}", m.stats()),
            m.take_retires(),
        )
    };
    let fast = run(false);
    let naive = run(true);
    assert_eq!(fast.0, naive.0, "{label}: run outcome diverged");
    assert_eq!(fast.1, naive.1, "{label}: cycle count diverged");
    assert_eq!(fast.3, naive.3, "{label}: retire stream diverged");
    assert_eq!(fast.2, naive.2, "{label}: SimStats diverged");
}

#[test]
fn fuzz_corpus_is_cycle_exact_under_the_event_driven_engine() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus");
    let entries = looseloops_fuzz::load_dir(&dir).expect("corpus must load");
    assert!(entries.len() >= 5, "corpus too small: {}", entries.len());
    for entry in entries {
        assert_engines_agree(
            entry.case.config.clone(),
            entry.case.programs.clone(),
            &format!("corpus `{}`", entry.name),
        );
    }
}

#[test]
fn fresh_fuzz_cases_are_cycle_exact() {
    for seed in [1u64, 7, 23, 1999, 31_337, 42_424] {
        let case = FuzzCase::from_seed(seed, None);
        assert_engines_agree(case.config.clone(), case.programs.clone(), &case.label());
    }
}

fn mem_heavy(seed: u64) -> Program {
    synthetic(SyntheticParams {
        seed,
        body_len: 24,
        branches: 3,
        taken_bits: 2,
        loads: 4,
        stores: 2,
        footprint: 64 << 10,
        chain: 4,
        fp: false,
        base: 16 << 20,
    })
}

#[test]
fn fault_storms_are_cycle_exact_across_load_policies() {
    use looseloops_pipeline::LoadSpecPolicy as P;
    for (i, policy) in [P::Stall, P::ReissueTree, P::ReissueShadow, P::Refetch]
        .into_iter()
        .enumerate()
    {
        let mut cfg = PipelineConfig::base();
        cfg.load_policy = policy;
        cfg.faults = Some(FaultPlan::load_storm(31 + i as u64, 0.3, 150));
        assert_engines_agree(
            cfg,
            vec![mem_heavy(5 + i as u64)],
            &format!("{policy:?} storm"),
        );
    }
}

#[test]
fn branch_storms_and_dra_drops_are_cycle_exact() {
    let mut cfg = PipelineConfig::base();
    cfg.faults = Some(FaultPlan::branch_storm(77, 0.25));
    assert_engines_agree(cfg, vec![mem_heavy(9)], "branch storm");

    let mut dra = PipelineConfig::dra_for_rf(5);
    dra.faults = Some(FaultPlan::load_storm(13, 0.2, 200));
    assert_engines_agree(dra, vec![mem_heavy(11)], "dra load storm");
}

#[test]
fn smt_store_traffic_is_cycle_exact() {
    let cfg = PipelineConfig::base().smt(2);
    let progs = vec![mem_heavy(21), mem_heavy(22)];
    assert_engines_agree(cfg, progs, "smt-2 store traffic");
}
