//! Smoke tests for every figure harness: each experiment must produce a
//! structurally valid result at a tiny budget, and the baseline rows must
//! be exactly 1.0.

use looseloops_repro::core::{
    ablation_load_policies, fig4_pipeline_length, fig5_fixed_total, fig6_operand_gap_cdf,
    fig8_dra_speedup, fig9_operand_sources, FigureResult, RunBudget, Workload,
};

fn tiny() -> RunBudget {
    RunBudget {
        warmup: 500,
        measure: 3_000,
        max_cycles: 2_000_000,
    }
}

fn check_speedup_figure(f: &FigureResult, series: usize, baseline_row: usize) {
    assert_eq!(f.series.len(), series, "{}", f.id);
    for s in &f.series {
        assert_eq!(
            s.values.len(),
            f.columns.len(),
            "{}: ragged series {}",
            f.id,
            s.label
        );
        for v in &s.values {
            assert!(
                v.is_finite() && *v > 0.0,
                "{}: non-positive speedup in {}",
                f.id,
                s.label
            );
        }
    }
    for v in &f.series[baseline_row].values {
        assert!((v - 1.0).abs() < 1e-12, "{}: baseline must be 1.0", f.id);
    }
    assert!(!f.paper_expectation.is_empty());
    // Rendering must not panic and must include every column.
    let table = f.to_table();
    for c in &f.columns {
        assert!(table.contains(c.as_str()), "{}: missing column {c}", f.id);
    }
    let json = f.to_json();
    assert!(json.contains(&f.id));
}

#[test]
fn fig4_smoke() {
    let f = fig4_pipeline_length(&Workload::smoke_set(), tiny());
    check_speedup_figure(&f, 4, 0);
}

#[test]
fn fig5_smoke() {
    let f = fig5_fixed_total(&Workload::smoke_set(), tiny());
    check_speedup_figure(&f, 4, 0);
}

#[test]
fn fig6_smoke() {
    let f = fig6_operand_gap_cdf(tiny());
    assert_eq!(f.series.len(), 1);
    assert_eq!(f.columns.len(), 61);
    let v = &f.series[0].values;
    assert!(v.windows(2).all(|w| w[1] >= w[0]), "CDF must be monotone");
    assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
}

#[test]
fn fig8_smoke() {
    let ws = Workload::smoke_set();
    let f = fig8_dra_speedup(&ws, tiny());
    assert_eq!(f.series.len(), 3);
    for s in &f.series {
        assert!(s.label.contains("DRA"));
        assert_eq!(s.values.len(), ws.len());
        for v in &s.values {
            assert!(
                v.is_finite() && *v > 0.3 && *v < 3.0,
                "implausible speedup {v}"
            );
        }
    }
}

#[test]
fn fig9_smoke() {
    let ws = Workload::smoke_set();
    let f = fig9_operand_sources(&ws, tiny());
    assert_eq!(f.series.len(), 5);
    for col in 0..ws.len() {
        let total: f64 = f.series.iter().map(|s| s.values[col]).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "fractions must sum to 1, got {total}"
        );
    }
    let rf = f.series.iter().find(|s| s.label == "regfile").unwrap();
    assert!(
        rf.values.iter().all(|v| *v == 0.0),
        "DRA never reads RF on the IQ-EX path"
    );
}

#[test]
fn ablation_smoke() {
    let f = ablation_load_policies(&Workload::smoke_set(), tiny());
    // 4 policies; smoke set + the appended chase microbenchmark.
    check_speedup_figure(&f, 4, 0);
    assert_eq!(*f.columns.last().unwrap(), "chase");
}
