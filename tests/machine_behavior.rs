//! Cross-crate behavioral tests: the machine's loops must *fire* and
//! *recover* the way the paper describes, observable through statistics.

use looseloops_repro::core::{
    loop_inventory, LoadSpecPolicy, Machine, PipelineConfig, RegisterScheme, RunBudget,
};
use looseloops_repro::core::{run_benchmark, Benchmark};
use looseloops_repro::isa::asm;
use looseloops_repro::mem::TlbMissPolicy;
use looseloops_repro::workload::{synthetic, SyntheticParams};

fn small() -> RunBudget {
    RunBudget {
        warmup: 2_000,
        measure: 15_000,
        max_cycles: 4_000_000,
    }
}

#[test]
fn branch_resolution_loop_fires_on_branchy_code() {
    let s = run_benchmark(&PipelineConfig::base(), Benchmark::Go, small());
    assert!(s.branches > 1_000, "go is branch-dominated");
    assert!(
        s.branch_mispredict_rate() > 0.05,
        "go's branches are data-dependent"
    );
    assert!(s.branch_squashes > 100);
    assert!(s.squashed > 1_000, "wrong-path work must be squashed");
}

#[test]
fn load_resolution_loop_fires_on_missy_code() {
    let s = run_benchmark(&PipelineConfig::base(), Benchmark::Swim, small());
    assert!(s.loads > 2_000);
    assert!(s.load_miss_rate() > 0.02, "swim streams past L1");
    assert!(
        s.load_replays > 0,
        "missed loads replay their issued dependents"
    );
}

#[test]
fn stall_policy_never_replays() {
    let cfg = PipelineConfig {
        load_policy: LoadSpecPolicy::Stall,
        ..PipelineConfig::base()
    };
    let s = run_benchmark(&cfg, Benchmark::Swim, small());
    assert_eq!(s.load_replays, 0);
    assert_eq!(s.shadow_replays, 0);
}

#[test]
fn shadow_policy_replays_more_than_tree() {
    let tree = run_benchmark(&PipelineConfig::base(), Benchmark::Swim, small());
    let cfg = PipelineConfig {
        load_policy: LoadSpecPolicy::ReissueShadow,
        ..PipelineConfig::base()
    };
    let shadow = run_benchmark(&cfg, Benchmark::Swim, small());
    assert!(
        shadow.load_replays + shadow.shadow_replays > tree.load_replays,
        "21264-style shadow kill wastes more work: {} vs {}",
        shadow.load_replays + shadow.shadow_replays,
        tree.load_replays
    );
}

#[test]
fn operand_resolution_loop_exists_only_under_dra() {
    let base = run_benchmark(&PipelineConfig::base_for_rf(5), Benchmark::Apsi, small());
    assert_eq!(base.operand_misses, 0);
    let dra = run_benchmark(&PipelineConfig::dra_for_rf(5), Benchmark::Apsi, small());
    assert!(
        dra.operand_misses > 0,
        "apsi is the DRA's pathological case"
    );
    assert!(dra.operand_miss_rate() > 0.001);
    assert!(dra.operand_replays > 0);
}

#[test]
fn dra_never_uses_the_iq_ex_register_read() {
    let s = run_benchmark(&PipelineConfig::dra_for_rf(3), Benchmark::Gcc, small());
    assert_eq!(s.operand_sources[3], 0, "no RegFile-path reads under DRA");
    assert!(s.operand_sources[0] > 0, "pre-reads happen");
    assert!(s.operand_sources[1] > 0, "forwarding happens");
    assert!(s.operand_sources[2] > 0, "the CRCs are used");
}

#[test]
fn tlb_traps_fire_for_page_hungry_code() {
    let s = run_benchmark(&PipelineConfig::base(), Benchmark::Turb3d, small());
    assert!(s.tlb_traps > 0, "turb3d's long strides must trap the dTLB");
}

#[test]
fn tlb_penalty_policy_avoids_traps() {
    let mut cfg = PipelineConfig::base();
    cfg.mem.dtlb.miss_policy = TlbMissPolicy::Penalty(30);
    let s = run_benchmark(&cfg, Benchmark::Turb3d, small());
    assert_eq!(s.tlb_traps, 0);
}

#[test]
fn memory_order_violation_trains_the_store_wait_table() {
    // A store whose address depends on a slow multiply chain, followed by a
    // load to the same address: the load speculates past the store, the
    // store detects the violation, and the second encounter waits.
    let prog = asm::assemble(
        "
            addi r1, r31, 0x4000
            addi r9, r31, 3
        top:
            mul  r2, r9, r9      ; slow address math
            mul  r2, r2, r9
            andi r2, r2, 0       ; ... which is always 0
            add  r2, r2, r1
            addi r3, r3, 1
            stq  r3, 0(r2)       ; store to 0x4000
            ldq  r4, 0(r1)       ; load from 0x4000 — races the store
            add  r5, r5, r4
            addi r6, r6, 1
            slti r7, r6, 2000
            bne  r7, top
            halt
    ",
    )
    .unwrap();
    let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
    m.enable_verification();
    m.run(u64::MAX, 2_000_000).unwrap();
    assert!(m.is_done());
    assert!(
        m.stats().mem_order_traps > 0,
        "the race must trap at least once"
    );
    // The store-wait table keeps re-trapping bounded: far fewer traps than
    // iterations.
    assert!(
        m.stats().mem_order_traps < 200,
        "store-wait prediction must stop repeat offenders, got {}",
        m.stats().mem_order_traps
    );
}

#[test]
fn loop_inventory_matches_machine_shape() {
    for cfg in [PipelineConfig::base(), PipelineConfig::dra_for_rf(5)] {
        let loops = loop_inventory(&cfg);
        let has_op = loops.iter().any(|l| l.name == "operand resolution");
        assert_eq!(has_op, matches!(cfg.scheme, RegisterScheme::Dra { .. }));
        // Tight loops are exactly next-line prediction and forwarding.
        let tight: Vec<_> = loops
            .iter()
            .filter(|l| l.is_tight())
            .map(|l| l.name)
            .collect();
        assert_eq!(tight, ["next line prediction", "forwarding"]);
    }
}

#[test]
fn smt_beats_the_worse_member_under_mispredict_pressure() {
    // go alone wastes huge fetch bandwidth on wrong paths; paired with the
    // well-behaved su2cor, total throughput must beat go alone.
    let budget = small();
    let go = run_benchmark(&PipelineConfig::base(), Benchmark::Go, budget).ipc();
    let pair = looseloops_repro::core::run_pair(
        &PipelineConfig::base().smt(2),
        Benchmark::pairs()[1], // go-su2cor
        budget,
    );
    assert!(
        pair.ipc() > go,
        "SMT pair throughput {} must exceed go alone {}",
        pair.ipc(),
        go
    );
}

#[test]
fn synthetic_branch_knob_controls_mispredicts() {
    let base = SyntheticParams {
        branches: 0,
        ..SyntheticParams::default()
    };
    let branchy = SyntheticParams {
        branches: 6,
        taken_bits: 1,
        ..SyntheticParams::default()
    };
    let cfg = PipelineConfig::base();
    let run = |p| {
        let prog = synthetic(p);
        let mut m = Machine::new(cfg.clone(), vec![prog]).unwrap();
        m.run(10_000, 2_000_000).unwrap();
        m.stats().branch_mispredict_rate()
    };
    assert!(run(branchy) > run(base) + 0.05);
}

#[test]
fn memory_barrier_drains_the_pipe() {
    let prog = asm::assemble(
        "
            addi r1, r31, 200
        top:
            addi r2, r2, 1
            mb
            addi r3, r3, 1
            subi r1, r1, 1
            bne  r1, top
            halt
    ",
    )
    .unwrap();
    let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
    m.enable_verification();
    m.run(u64::MAX, 1_000_000).unwrap();
    assert!(m.is_done());
    assert_eq!(m.stats().mem_barriers, 200);
    // Each barrier costs roughly a pipeline drain; IPC collapses.
    assert!(
        m.stats().ipc() < 1.0,
        "barriers must hurt: ipc={}",
        m.stats().ipc()
    );
}
