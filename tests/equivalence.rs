//! The master correctness property: whatever the timing configuration —
//! pipeline depths, register scheme, load-speculation policy — the pipeline
//! must retire *exactly* the instruction stream the functional interpreter
//! produces, value for value. Every speculation and recovery path
//! (branches, load shadows, operand misses, memory traps, TLB traps) is
//! covered because the oracle check runs at every retirement.
//!
//! Cases are drawn from a deterministic `looseloops-rng` seed schedule so
//! failures reproduce exactly.

use looseloops_repro::core::{LoadSpecPolicy, Machine, PipelineConfig};
use looseloops_repro::workload::{synthetic, SyntheticParams};
use looseloops_rng::Rng;

fn run_verified(cfg: PipelineConfig, params: SyntheticParams, instructions: u64) {
    let prog = synthetic(params);
    let mut m = Machine::new(cfg, vec![prog]).expect("valid config");
    m.enable_verification(); // panics on the first divergence
    m.run(instructions, 4_000_000).expect("no deadlock");
    assert!(
        m.stats().total_retired() >= instructions.min(1000),
        "simulation made no progress"
    );
}

fn arb_params(rng: &mut Rng) -> SyntheticParams {
    let branches = rng.gen_range(0u32..5);
    let loads = rng.gen_range(0u32..4);
    let stores = rng.gen_range(0u32..2);
    let chain = rng.gen_range(0u32..8);
    let body_len = rng
        .gen_range(4u32..24)
        .max(branches + loads + stores + chain + 1);
    SyntheticParams {
        seed: rng.gen_range(1u64..10_000),
        body_len,
        branches,
        taken_bits: rng.gen_range(1u32..4),
        loads,
        stores,
        footprint: *rng.choose(&[16u32 << 10, 64 << 10, 1 << 20]).unwrap(),
        chain,
        fp: rng.gen_bool(0.5),
        base: 16 << 20,
    }
}

/// Audited configuration: the per-cycle invariant auditor runs throughout
/// every equivalence case, so any structural inconsistency a recovery path
/// introduces fails the run even if the architectural results still match.
fn audited(cfg: PipelineConfig) -> PipelineConfig {
    PipelineConfig { audit: true, ..cfg }
}

#[test]
fn base_machine_matches_interpreter() {
    let mut rng = Rng::seed_from_u64(0xe91);
    for _ in 0..12 {
        run_verified(audited(PipelineConfig::base()), arb_params(&mut rng), 4_000);
    }
}

#[test]
fn dra_machine_matches_interpreter() {
    let mut rng = Rng::seed_from_u64(0xe92);
    for _ in 0..12 {
        run_verified(
            audited(PipelineConfig::dra_for_rf(5)),
            arb_params(&mut rng),
            4_000,
        );
    }
}

#[test]
fn every_load_policy_matches_interpreter() {
    let mut rng = Rng::seed_from_u64(0xe93);
    for policy in [
        LoadSpecPolicy::Stall,
        LoadSpecPolicy::ReissueTree,
        LoadSpecPolicy::ReissueShadow,
        LoadSpecPolicy::Refetch,
    ] {
        for _ in 0..3 {
            let cfg = PipelineConfig {
                load_policy: policy,
                ..PipelineConfig::base()
            };
            run_verified(audited(cfg), arb_params(&mut rng), 3_000);
        }
    }
}

#[test]
fn extreme_latency_splits_match_interpreter() {
    let mut rng = Rng::seed_from_u64(0xe94);
    for (dec, ex) in [(3, 9), (9, 3), (3, 3), (9, 9)] {
        for _ in 0..3 {
            run_verified(
                audited(PipelineConfig::base_with_latencies(dec, ex)),
                arb_params(&mut rng),
                3_000,
            );
        }
    }
}

#[test]
fn every_benchmark_kernel_is_verified_on_base_and_dra() {
    use looseloops_repro::workload::Benchmark;
    for b in Benchmark::all() {
        for cfg in [PipelineConfig::base(), PipelineConfig::dra_for_rf(7)] {
            let mut m = Machine::new(audited(cfg), vec![b.program()]).expect("valid config");
            m.enable_verification();
            m.run(6_000, 4_000_000).expect("no deadlock");
            assert!(m.stats().total_retired() >= 6_000, "{b} stalled");
        }
    }
}

#[test]
fn smt_pairs_are_verified() {
    use looseloops_repro::workload::Benchmark;
    for pair in Benchmark::pairs() {
        let mut m = Machine::new(audited(PipelineConfig::base().smt(2)), pair.programs())
            .expect("valid config");
        m.enable_verification();
        m.run(8_000, 4_000_000).expect("no deadlock");
        assert!(
            m.stats().retired.iter().all(|&r| r > 0),
            "{pair} starved a thread"
        );
    }
}

/// The differential-fuzz harness covers the complementary angle: the
/// per-retire verifier above panics at the *first* divergent retirement,
/// while `run_case` lets both sides run to halt and then compares the
/// complete retire streams, the final architectural state (via the public
/// `ArchState::diff`) and the final data memory. Structure-aware generated
/// programs — nested loops, branch nests, aliased memory, dependence
/// chains, barriers, calls — run across sampled configs of both schemes.
#[test]
fn generated_programs_match_the_oracle_end_to_end() {
    for seed in 0..16u64 {
        let case = looseloops_fuzz::FuzzCase::from_seed(seed, None);
        let out = looseloops_fuzz::run_case(&case);
        assert!(
            out.finding.is_none(),
            "{}: {}",
            case.label(),
            out.finding.unwrap()
        );
        assert!(out.retired > 0, "{}: retired nothing", case.label());
    }
}

/// Two-thread SMT runs are oracle-exact too (threads use disjoint
/// address regions).
#[test]
fn smt_synthetic_matches_interpreter() {
    let mut rng = Rng::seed_from_u64(0xe95);
    for _ in 0..6 {
        let pa = synthetic(SyntheticParams {
            base: 16 << 20,
            ..arb_params(&mut rng)
        });
        let pb = synthetic(SyntheticParams {
            base: 144 << 20,
            ..arb_params(&mut rng)
        });
        let mut m = Machine::new(audited(PipelineConfig::base().smt(2)), vec![pa, pb])
            .expect("valid config");
        m.enable_verification();
        m.run(6_000, 4_000_000).expect("no deadlock");
        assert!(m.stats().retired.iter().all(|&r| r > 0));
    }
}
