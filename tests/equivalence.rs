//! The master correctness property: whatever the timing configuration —
//! pipeline depths, register scheme, load-speculation policy — the pipeline
//! must retire *exactly* the instruction stream the functional interpreter
//! produces, value for value. Every speculation and recovery path
//! (branches, load shadows, operand misses, memory traps, TLB traps) is
//! covered because the oracle check runs at every retirement.

use looseloops_repro::core::{LoadSpecPolicy, Machine, PipelineConfig};
use looseloops_repro::workload::{synthetic, SyntheticParams};
use proptest::prelude::*;

fn run_verified(cfg: PipelineConfig, params: SyntheticParams, instructions: u64) {
    let prog = synthetic(params);
    let mut m = Machine::new(cfg, vec![prog]);
    m.enable_verification(); // panics on the first divergence
    m.run(instructions, 4_000_000);
    assert!(
        m.stats().total_retired() >= instructions.min(1000),
        "simulation made no progress"
    );
}

fn arb_params() -> impl Strategy<Value = SyntheticParams> {
    (
        1u64..10_000,
        4u32..24,
        0u32..5,
        1u32..4,
        0u32..4,
        0u32..2,
        prop_oneof![Just(16u32 << 10), Just(64 << 10), Just(1 << 20)],
        0u32..8,
        any::<bool>(),
    )
        .prop_map(
            |(seed, body_len, branches, taken_bits, loads, stores, footprint, chain, fp)| {
                SyntheticParams {
                    seed,
                    body_len: body_len.max(branches + loads + stores + chain + 1),
                    branches,
                    taken_bits,
                    loads,
                    stores,
                    footprint,
                    chain,
                    fp,
                    base: 16 << 20,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn base_machine_matches_interpreter(params in arb_params()) {
        run_verified(PipelineConfig::base(), params, 4_000);
    }

    #[test]
    fn dra_machine_matches_interpreter(params in arb_params()) {
        run_verified(PipelineConfig::dra_for_rf(5), params, 4_000);
    }

    #[test]
    fn every_load_policy_matches_interpreter(params in arb_params(), which in 0usize..4) {
        let policy = [
            LoadSpecPolicy::Stall,
            LoadSpecPolicy::ReissueTree,
            LoadSpecPolicy::ReissueShadow,
            LoadSpecPolicy::Refetch,
        ][which];
        let cfg = PipelineConfig { load_policy: policy, ..PipelineConfig::base() };
        run_verified(cfg, params, 3_000);
    }

    #[test]
    fn extreme_latency_splits_match_interpreter(params in arb_params(), x in 0usize..4) {
        let (dec, ex) = [(3, 9), (9, 3), (3, 3), (9, 9)][x];
        run_verified(PipelineConfig::base_with_latencies(dec, ex), params, 3_000);
    }
}

#[test]
fn every_benchmark_kernel_is_verified_on_base_and_dra() {
    use looseloops_repro::workload::Benchmark;
    for b in Benchmark::all() {
        for cfg in [PipelineConfig::base(), PipelineConfig::dra_for_rf(7)] {
            let mut m = Machine::new(cfg, vec![b.program()]);
            m.enable_verification();
            m.run(6_000, 4_000_000);
            assert!(m.stats().total_retired() >= 6_000, "{b} stalled");
        }
    }
}

#[test]
fn smt_pairs_are_verified() {
    use looseloops_repro::workload::Benchmark;
    for pair in Benchmark::pairs() {
        let mut m = Machine::new(PipelineConfig::base().smt(2), pair.programs());
        m.enable_verification();
        m.run(8_000, 4_000_000);
        assert!(m.stats().retired.iter().all(|&r| r > 0), "{pair} starved a thread");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Two-thread SMT runs are oracle-exact too (threads use disjoint
    /// address regions).
    #[test]
    fn smt_synthetic_matches_interpreter(a in arb_params(), b in arb_params()) {
        let pa = synthetic(SyntheticParams { base: 16 << 20, ..a });
        let pb = synthetic(SyntheticParams { base: 144 << 20, ..b });
        let mut m = Machine::new(PipelineConfig::base().smt(2), vec![pa, pb]);
        m.enable_verification();
        m.run(6_000, 4_000_000);
        prop_assert!(m.stats().retired.iter().all(|&r| r > 0));
    }
}
