//! The shipped sample assembly kernels must assemble, run to completion on
//! the pipeline with verification, and produce the documented results.

use looseloops_repro::core::{Machine, PipelineConfig};
use looseloops_repro::isa::{asm, Reg};

fn run_sample(name: &str) -> Machine {
    let src = std::fs::read_to_string(format!("examples/kernels/{name}"))
        .unwrap_or_else(|e| panic!("missing sample {name}: {e}"));
    let prog = asm::assemble_named(name, &src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
    m.enable_verification();
    m.run(u64::MAX, 2_000_000).unwrap();
    assert!(m.is_done(), "{name} must halt");
    m
}

#[test]
fn dotproduct_computes_the_dot_product() {
    let mut m = run_sample("dotproduct.s");
    let expect: u64 = (1..=16u64).map(|i| i * (17 - i)).sum();
    assert_eq!(m.arch_reg(0, Reg::int(7)), expect);
}

#[test]
fn fib_computes_fib_30() {
    let mut m = run_sample("fib.s");
    assert_eq!(m.arch_reg(0, Reg::int(3)), 832_040);
}

#[test]
fn memcpy_checksum_matches_source() {
    let mut m = run_sample("memcpy.s");
    assert_eq!(
        m.arch_reg(0, Reg::int(5)),
        0xdead + 0xbeef + 0xcafe + 0xf00d
    );
}
