//! Tier-1 replay of the shrunk-reproducer corpus from the top-level
//! package, so a plain `cargo test` in the repo root exercises it even
//! without `--workspace`.
//!
//! `crates/fuzz/tests/corpus_replay.rs` is the authoritative suite (it
//! also checks the stale-banner path and hosts the `--ignored`
//! regeneration writer); this test pins the same guarantee — every
//! checked-in entry replays clean against the healthy pipeline — into
//! the root package's test set.

use std::path::Path;

#[test]
fn checked_in_corpus_replays_clean_from_the_root_package() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus");
    let entries = looseloops_fuzz::load_dir(&dir).expect("corpus must load");
    assert!(
        entries.len() >= 5,
        "corpus must hold at least 5 regression programs, found {}",
        entries.len()
    );
    for entry in entries {
        let out = looseloops_fuzz::run_case(&entry.case);
        assert!(
            out.finding.is_none(),
            "corpus entry `{}` (recorded: {}) diverges again: {}",
            entry.name,
            entry.recorded_finding,
            out.finding.unwrap()
        );
    }
}
