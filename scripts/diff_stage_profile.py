#!/usr/bin/env python3
"""Diff two stage-profile JSONL files across commits.

Usage:
    diff_stage_profile.py BEFORE.jsonl AFTER.jsonl [--label LABEL]

Both files are produced by `looseloops run/figure --profile-json FILE`:
one JSON object per line, keyed by label (the benchmark or figure id),
with per-stage wall-clock nanoseconds. Labels present in both files are
compared stage by stage; the delta column is AFTER relative to BEFORE
(negative = faster). Wall-clock numbers are host-dependent — run both
sides on the same quiet machine.
"""

import argparse
import json
import sys


def load(path):
    profiles = {}
    with open(path, encoding="utf-8") as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"error: {path}:{n}: {e}")
            for key in ("label", "stage_ns", "stepped_cycles"):
                if key not in doc:
                    sys.exit(f"error: {path}:{n}: missing {key!r} (not a --profile-json file?)")
            # Last write wins: re-running a label supersedes the old line.
            profiles[doc["label"]] = doc
    if not profiles:
        sys.exit(f"error: {path}: no profiles")
    return profiles


def fmt_ms(ns):
    return f"{ns / 1e6:10.2f}"


def diff_one(label, before, after):
    print(f"== {label} ==")
    print(f"{'stage':<12} {'before ms':>10} {'after ms':>10} {'delta':>8}")
    stages = list(before["stage_ns"])
    for extra in after["stage_ns"]:
        if extra not in stages:
            stages.append(extra)
    rows = [
        (s, before["stage_ns"].get(s, 0), after["stage_ns"].get(s, 0))
        for s in stages
    ]
    rows.sort(key=lambda r: -max(r[1], r[2]))
    for stage, b, a in rows:
        delta = f"{(a - b) / b * 100.0:+7.1f}%" if b else "    new"
        print(f"{stage:<12} {fmt_ms(b)} {fmt_ms(a)} {delta:>8}")
    tb, ta = before.get("total_ns", 0), after.get("total_ns", 0)
    delta = f"{(ta - tb) / tb * 100.0:+7.1f}%" if tb else "    new"
    print(f"{'total':<12} {fmt_ms(tb)} {fmt_ms(ta)} {delta:>8}")
    print(
        f"{'cycles':<12} stepped {before['stepped_cycles']} -> {after['stepped_cycles']}, "
        f"skipped {before.get('skipped_cycles', 0)} -> {after.get('skipped_cycles', 0)}"
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("before")
    ap.add_argument("after")
    ap.add_argument("--label", help="compare only this label")
    args = ap.parse_args()

    before, after = load(args.before), load(args.after)
    labels = [l for l in before if l in after]
    if args.label:
        labels = [l for l in labels if l == args.label]
    if not labels:
        sys.exit("error: no common labels to compare")
    for i, label in enumerate(labels):
        if i:
            print()
        diff_one(label, before[label], after[label])
    only_before = sorted(set(before) - set(after))
    only_after = sorted(set(after) - set(before))
    if only_before:
        print(f"\nonly in {args.before}: {', '.join(only_before)}")
    if only_after:
        print(f"only in {args.after}: {', '.join(only_after)}")


if __name__ == "__main__":
    main()
