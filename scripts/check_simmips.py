#!/usr/bin/env python3
"""Compare a sim-MIPS measurement against the checked-in baseline.

Usage:
    check_simmips.py BASELINE.json CURRENT.json [--tolerance 0.20]

Both files are produced by `cargo bench -p looseloops-bench --bench
simmips`. The check is one-sided: only slowdowns fail. A figure is a
regression when

    current.sim_mips < baseline.sim_mips * (1 - tolerance)

The budgets of the two runs must match exactly — comparing sim-MIPS
across different warm-up/measure budgets is meaningless, so a mismatch is
an error rather than a pass.
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    for key in ("budget", "entries"):
        if key not in doc:
            sys.exit(f"error: {path}: missing {key!r} (not a simmips report?)")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional slowdown before failing (default 0.20)",
    )
    ap.add_argument(
        "--min-ff-ratio",
        type=float,
        default=30.0,
        help=(
            "minimum ratio of the current run's functional-ff sim-MIPS to "
            "its fastest detailed sweep's sim-MIPS (default 30.0 — the "
            "event-driven detailed engine closed part of the gap, so the "
            "old 50x floor would flag the intended speedup as a "
            "regression); the ratio is taken within the current run, so "
            "it is machine-speed independent"
        ),
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    if base["budget"] != cur["budget"]:
        sys.exit(
            "error: budget mismatch — baseline "
            f"{base['budget']} vs current {cur['budget']}; "
            "sim-MIPS is only comparable at identical budgets"
        )

    base_by_fig = {e["figure"]: e for e in base["entries"]}
    failures = []
    for e in cur["entries"]:
        fig = e["figure"]
        if fig not in base_by_fig:
            print(f"note: {fig}: no baseline entry, skipping")
            continue
        b = base_by_fig[fig]
        if e["instructions"] != b["instructions"]:
            sys.exit(
                f"error: {fig}: instruction count changed "
                f"({b['instructions']} -> {e['instructions']}); the workload "
                "itself differs, refresh the baseline deliberately"
            )
        floor = b["sim_mips"] * (1.0 - args.tolerance)
        verdict = "OK" if e["sim_mips"] >= floor else "REGRESSION"
        print(
            f"{fig}: baseline {b['sim_mips']:.3f} sim-MIPS, "
            f"current {e['sim_mips']:.3f} (floor {floor:.3f}) -> {verdict}"
        )
        if verdict != "OK":
            failures.append(fig)

    missing = sorted(set(base_by_fig) - {e["figure"] for e in cur["entries"]})
    if missing:
        sys.exit(f"error: current run is missing baseline figures: {missing}")

    # Functional fast-forward must stay far faster than detailed
    # simulation — that gap is what checkpointed warm-up and interval
    # sampling buy their speedup with. Compared within the current run
    # (not against the baseline) so machine speed cancels out.
    cur_by_fig = {e["figure"]: e for e in cur["entries"]}
    ff = cur_by_fig.get("functional-ff")
    detailed = [e for f, e in cur_by_fig.items() if f != "functional-ff"]
    if ff and detailed and args.min_ff_ratio > 0:
        fastest = max(detailed, key=lambda e: e["sim_mips"])
        ratio = ff["sim_mips"] / max(fastest["sim_mips"], 1e-9)
        verdict = "OK" if ratio >= args.min_ff_ratio else "REGRESSION"
        print(
            f"functional-ff: {ff['sim_mips']:.1f} sim-MIPS vs detailed "
            f"{fastest['figure']} {fastest['sim_mips']:.3f} -> "
            f"{ratio:.1f}x (floor {args.min_ff_ratio:.1f}x) -> {verdict}"
        )
        if verdict != "OK":
            failures.append("functional-ff ratio")
    elif not ff:
        print("note: no functional-ff entry in current run, ratio check skipped")

    if failures:
        sys.exit(f"sim-MIPS regression in: {', '.join(failures)}")
    print("sim-MIPS within tolerance")


if __name__ == "__main__":
    main()
